// Package remote is the wire layer of the distributed task service: a
// compact length-prefixed binary protocol over TCP that moves task *runs*
// (batches), not tasks, between schedulers, shard servers and workers.
//
// Design constraints, in order:
//
//   - Amortization over the wire. Per-task synchronization is what SALSA
//     removes in-process; re-introducing a per-task network round trip
//     would throw that away (cf. Rito & Paulino, arXiv:1810.10615). Every
//     data frame therefore carries a whole run: PUT_BATCH and TASKS frames
//     hold up to MaxTasksPerBatch length-prefixed bodies, and the protocol
//     has no single-task message at all.
//   - Backpressure is the pool's own signal. A shard whose chunk pools are
//     exhausted refuses inserts (salsa.ErrSaturated); the server maps that
//     refusal to a SATURATED frame with a retry-after hint instead of
//     buffering, so the producer-based balancing of §1.5.4 extends across
//     shards: the scheduler spills the rejected run to the next shard on
//     its policy order.
//   - Fuzz-safe decoding. Frames arrive from the network; the decoder must
//     never panic, never over-allocate on a hostile length prefix (the
//     declared length is validated against the configured maximum before
//     any allocation), and must reject version skew with a typed error.
//     FuzzDecodeFrame in this package holds that contract.
//
// The frame layout is an 8-byte header followed by the payload:
//
//	offset 0: magic 'S'                 (resync/garbage detection)
//	offset 1: magic 'L'
//	offset 2: protocol version          (Version; skew is an error)
//	offset 3: frame kind                (Kind)
//	offset 4: payload length, uint32 BE (bounded by MaxPayload)
//
// All multi-byte integers are big-endian. Task bodies are opaque byte
// strings; identity and semantics belong to the application.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Protocol constants.
const (
	// Version is the protocol version carried in every frame header.
	// There is no negotiation: a peer speaking another version is
	// rejected with ErrVersion at the first frame.
	//
	// Version history:
	//
	//	1 — initial protocol (PR 8)
	//	2 — HELLO carries an auth token, PUT_BATCH carries the producer
	//	    token + sequence number for idempotent retry, QUIESCE added
	Version = 2

	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 8

	// DefaultMaxPayload bounds a frame payload unless overridden; the
	// decoder rejects larger declared lengths before allocating.
	DefaultMaxPayload = 4 << 20

	// MaxTasksPerBatch bounds the task count of one PUT_BATCH/TASKS
	// frame; the decoder rejects larger declared counts before
	// allocating.
	MaxTasksPerBatch = 1 << 16

	magic0 = 'S'
	magic1 = 'L'
)

// Kind identifies a frame. The zero value is invalid on purpose.
type Kind uint8

// Frame kinds. Request/response pairing is strict per connection: clients
// send one request frame and read one response frame (no pipelining),
// which keeps both ends allocation-free and makes any interleaving a
// protocol error rather than a correctness hazard.
const (
	// KindHello opens every connection: payload declares the peer role.
	// Server answers ACK (producers: A = leased lane id).
	KindHello Kind = 1 + iota
	// KindAck is the generic success response carrying two uint64s
	// whose meaning depends on the request (see the message structs).
	KindAck
	// KindErr is the typed failure response: a Code plus a message.
	KindErr
	// KindPutBatch carries a run of task bodies from a producer.
	// Answered with ACK (A = tasks accepted) or SATURATED.
	KindPutBatch
	// KindGetBatch asks for up to Max tasks, waiting at most WaitMs.
	// Answered with TASKS (possibly empty) or ERR.
	KindGetBatch
	// KindTasks carries a run of task bodies to a worker.
	KindTasks
	// KindSaturated is the wire form of salsa.ErrSaturated: every chunk
	// pool reachable from the shard's lane refused the insert. Carries a
	// retry-after hint; the scheduler treats it as a spill signal.
	KindSaturated
	// KindJoin registers the connection's worker as a pool consumer
	// (salsa.Pool.AddConsumer). Answered with ACK (A = consumer id,
	// B = lease in milliseconds) or ERR with CodeCapacity.
	KindJoin
	// KindDrain departs gracefully: workers are retired
	// (RetireConsumer), producer lanes are released. Answered with ACK.
	KindDrain
	// KindPing refreshes the sender's lease without moving data.
	// Answered with ACK.
	KindPing
	// KindQuiesce (admin, first frame instead of HELLO) drains the
	// shard: producer lanes are fenced with CodeDraining, residual
	// tasks are re-published to the named peer shard, and consumers are
	// retired. Answered with ACK (A = tasks handed off) once the shard
	// is empty, or ERR.
	KindQuiesce

	kindCount // one past the last valid kind
)

// String returns the frame kind's wire-stable name (used as the metrics
// label in salsa_remote_frames_total{kind}).
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "HELLO"
	case KindAck:
		return "ACK"
	case KindErr:
		return "ERR"
	case KindPutBatch:
		return "PUT_BATCH"
	case KindGetBatch:
		return "GET_BATCH"
	case KindTasks:
		return "TASKS"
	case KindSaturated:
		return "SATURATED"
	case KindJoin:
		return "JOIN"
	case KindDrain:
		return "DRAIN"
	case KindPing:
		return "PING"
	case KindQuiesce:
		return "QUIESCE"
	default:
		return fmt.Sprintf("KIND_%d", uint8(k))
	}
}

func (k Kind) valid() bool { return k >= KindHello && k < kindCount }

// Decoder errors. All are wrapped with context; match with errors.Is.
var (
	// ErrBadMagic marks a frame that does not start with the protocol
	// magic — garbage, or a desynchronized stream.
	ErrBadMagic = errors.New("remote: bad frame magic")
	// ErrVersion marks version skew: the peer speaks a different
	// protocol version.
	ErrVersion = errors.New("remote: protocol version mismatch")
	// ErrOversize marks a declared payload length above the configured
	// maximum. Raised before any allocation.
	ErrOversize = errors.New("remote: frame payload exceeds maximum")
	// ErrTruncated marks a frame shorter than its header or declared
	// payload length.
	ErrTruncated = errors.New("remote: truncated frame")
	// ErrBadFrame marks a structurally invalid frame: unknown kind, or
	// a payload that does not parse as its kind's message.
	ErrBadFrame = errors.New("remote: malformed frame")
)

// Frame is one decoded frame. Payload aliases the decode buffer: it is
// valid until the next read on the same connection, and callers that
// retain task bodies must copy them.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// parseHeader validates an 8-byte header and returns the frame kind and
// declared payload length. max bounds the length before any allocation.
func parseHeader(h []byte, max int) (Kind, int, error) {
	if h[0] != magic0 || h[1] != magic1 {
		return 0, 0, fmt.Errorf("%w: % x", ErrBadMagic, h[:2])
	}
	if h[2] != Version {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, h[2], Version)
	}
	k := Kind(h[3])
	if !k.valid() {
		return 0, 0, fmt.Errorf("%w: unknown kind %d", ErrBadFrame, h[3])
	}
	n := binary.BigEndian.Uint32(h[4:8])
	if int64(n) > int64(max) {
		return 0, 0, fmt.Errorf("%w: %d > %d", ErrOversize, n, max)
	}
	return k, int(n), nil
}

// DecodeFrame parses one frame from the head of b without copying: the
// returned Frame's payload aliases b. consumed is the total frame size
// (header + payload). max bounds the payload length; lengths above it are
// rejected before any allocation (the fuzz contract).
func DecodeFrame(b []byte, max int) (f Frame, consumed int, err error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(b), HeaderSize)
	}
	k, n, err := parseHeader(b[:HeaderSize], max)
	if err != nil {
		return Frame{}, 0, err
	}
	if len(b)-HeaderSize < n {
		return Frame{}, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncated, len(b)-HeaderSize, n)
	}
	return Frame{Kind: k, Payload: b[HeaderSize : HeaderSize+n]}, HeaderSize + n, nil
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, k Kind, payload []byte) []byte {
	dst = append(dst, magic0, magic1, Version, byte(k))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// payloadReader is a bounds-checked cursor over a frame payload. Every
// accessor degrades to the zero value once a bound is crossed; finish()
// reports whether the payload parsed exactly (no error, no trailing
// bytes).
type payloadReader struct {
	b   []byte
	bad bool
}

func (p *payloadReader) u8() uint8 {
	if p.bad || len(p.b) < 1 {
		p.bad = true
		return 0
	}
	v := p.b[0]
	p.b = p.b[1:]
	return v
}

func (p *payloadReader) u32() uint32 {
	if p.bad || len(p.b) < 4 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(p.b)
	p.b = p.b[4:]
	return v
}

func (p *payloadReader) u64() uint64 {
	if p.bad || len(p.b) < 8 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(p.b)
	p.b = p.b[8:]
	return v
}

// bytes reads a u32 length prefix and returns that many bytes as a
// subslice (no copy).
func (p *payloadReader) bytes() []byte {
	n := p.u32()
	if p.bad || uint64(n) > uint64(len(p.b)) {
		p.bad = true
		return nil
	}
	v := p.b[:n]
	p.b = p.b[n:]
	return v
}

// finish returns ErrBadFrame when the payload under- or over-ran.
func (p *payloadReader) finish(kind Kind) error {
	if p.bad {
		return fmt.Errorf("%w: short %s payload", ErrBadFrame, kind)
	}
	if len(p.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %s payload", ErrBadFrame, len(p.b), kind)
	}
	return nil
}

// Role declares a connection's purpose in HELLO.
type Role uint8

// Connection roles.
const (
	// RoleProducer leases one of the shard's producer lanes and streams
	// PUT_BATCH frames.
	RoleProducer Role = 1
	// RoleWorker joins the shard's consumer membership and streams
	// GET_BATCH frames.
	RoleWorker Role = 2
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleProducer:
		return "producer"
	case RoleWorker:
		return "worker"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Hello is the KindHello payload: the peer's role plus its auth token
// (empty when the shard runs open). The token is always present on the
// wire — a length-prefixed byte string — so there is exactly one
// canonical encoding per Hello value (the fuzz round-trip contract).
type Hello struct {
	Role  Role
	Token []byte
}

// AppendHello appends h's wire encoding to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, byte(h.Role))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(h.Token)))
	return append(dst, h.Token...)
}

// DecodeHello parses a KindHello payload.
func DecodeHello(b []byte) (Hello, error) {
	p := payloadReader{b: b}
	h := Hello{Role: Role(p.u8()), Token: p.bytes()}
	if err := p.finish(KindHello); err != nil {
		return Hello{}, err
	}
	if h.Role != RoleProducer && h.Role != RoleWorker {
		return Hello{}, fmt.Errorf("%w: unknown role %d", ErrBadFrame, h.Role)
	}
	return h, nil
}

// Ack is the KindAck payload: two request-defined values.
//
//	HELLO(producer) → A = leased lane id
//	JOIN            → A = consumer id, B = lease in milliseconds
//	PUT_BATCH       → A = tasks accepted (a prefix of the batch)
//	PING/DRAIN      → both zero
type Ack struct{ A, B uint64 }

// AppendAck appends a's wire encoding to dst.
func AppendAck(dst []byte, a Ack) []byte {
	dst = binary.BigEndian.AppendUint64(dst, a.A)
	return binary.BigEndian.AppendUint64(dst, a.B)
}

// DecodeAck parses a KindAck payload.
func DecodeAck(b []byte) (Ack, error) {
	p := payloadReader{b: b}
	a := Ack{A: p.u64(), B: p.u64()}
	if err := p.finish(KindAck); err != nil {
		return Ack{}, err
	}
	return a, nil
}

// ErrMsg is the KindErr payload: a typed error code plus a human-readable
// message. See errors.go for the code ↔ error mapping.
type ErrMsg struct {
	Code Code
	Msg  string
}

// AppendErrMsg appends e's wire encoding to dst.
func AppendErrMsg(dst []byte, e ErrMsg) []byte {
	dst = append(dst, byte(e.Code))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Msg)))
	return append(dst, e.Msg...)
}

// DecodeErrMsg parses a KindErr payload.
func DecodeErrMsg(b []byte) (ErrMsg, error) {
	p := payloadReader{b: b}
	e := ErrMsg{Code: Code(p.u8()), Msg: string(p.bytes())}
	if err := p.finish(KindErr); err != nil {
		return ErrMsg{}, err
	}
	return e, nil
}

// Batch is the KindPutBatch / KindTasks payload: a run of opaque task
// bodies. Decoded bodies alias the frame buffer.
type Batch struct{ Tasks [][]byte }

// AppendBatch appends b's wire encoding to dst.
func AppendBatch(dst []byte, b Batch) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Tasks)))
	for _, t := range b.Tasks {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(t)))
		dst = append(dst, t...)
	}
	return dst
}

// DecodeBatch parses a KindPutBatch/KindTasks payload. The declared task
// count is validated against both MaxTasksPerBatch and the bytes actually
// present (each task costs at least a 4-byte length prefix) before the
// slice is allocated, so a hostile count cannot over-allocate.
func DecodeBatch(b []byte, kind Kind) (Batch, error) {
	p := payloadReader{b: b}
	n := p.u32()
	if p.bad || n > MaxTasksPerBatch || uint64(n) > uint64(len(p.b)/4) {
		return Batch{}, fmt.Errorf("%w: task count %d", ErrBadFrame, n)
	}
	out := Batch{Tasks: make([][]byte, n)}
	for i := range out.Tasks {
		out.Tasks[i] = p.bytes()
	}
	if err := p.finish(kind); err != nil {
		return Batch{}, err
	}
	return out, nil
}

// PutReq is the KindPutBatch payload: the batch plus the producer's
// idempotency identity. Token is a random per-producer id and Seq a
// monotonically increasing request number; together they let the shard
// deduplicate a retry whose original ACK was lost to a connection cut
// (the wire-level analogue of the rescue double-take, DESIGN.md §14).
// Token 0 opts out of deduplication.
type PutReq struct {
	Token uint64
	Seq   uint64
	B     Batch
}

// AppendPutReq appends r's wire encoding to dst.
func AppendPutReq(dst []byte, r PutReq) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.Token)
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	return AppendBatch(dst, r.B)
}

// DecodePutReq parses a KindPutBatch payload. Task bodies alias b.
func DecodePutReq(b []byte) (PutReq, error) {
	p := payloadReader{b: b}
	r := PutReq{Token: p.u64(), Seq: p.u64()}
	if p.bad {
		return PutReq{}, fmt.Errorf("%w: short %s payload", ErrBadFrame, KindPutBatch)
	}
	var err error
	r.B, err = DecodeBatch(p.b, KindPutBatch)
	if err != nil {
		return PutReq{}, err
	}
	return r, nil
}

// QuiesceReq is the KindQuiesce payload.
type QuiesceReq struct {
	// Token must match the shard's auth token (always present on the
	// wire, empty when the shard runs open): quiescing is an admin
	// action.
	Token []byte
	// Peer is the shard address residual tasks are handed off to.
	// Empty means drain-in-place is refused unless the shard is empty.
	Peer string
}

// AppendQuiesceReq appends q's wire encoding to dst.
func AppendQuiesceReq(dst []byte, q QuiesceReq) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(q.Token)))
	dst = append(dst, q.Token...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(q.Peer)))
	return append(dst, q.Peer...)
}

// DecodeQuiesceReq parses a KindQuiesce payload.
func DecodeQuiesceReq(b []byte) (QuiesceReq, error) {
	p := payloadReader{b: b}
	q := QuiesceReq{Token: p.bytes(), Peer: string(p.bytes())}
	if err := p.finish(KindQuiesce); err != nil {
		return QuiesceReq{}, err
	}
	return q, nil
}

// GetReq is the KindGetBatch payload.
type GetReq struct {
	// Max bounds the tasks returned (the server additionally clamps it).
	Max uint32
	// WaitMs bounds how long the server may hold the request while the
	// shard is dry before answering with an empty TASKS frame.
	WaitMs uint32
}

// AppendGetReq appends g's wire encoding to dst.
func AppendGetReq(dst []byte, g GetReq) []byte {
	dst = binary.BigEndian.AppendUint32(dst, g.Max)
	return binary.BigEndian.AppendUint32(dst, g.WaitMs)
}

// DecodeGetReq parses a KindGetBatch payload.
func DecodeGetReq(b []byte) (GetReq, error) {
	p := payloadReader{b: b}
	g := GetReq{Max: p.u32(), WaitMs: p.u32()}
	if err := p.finish(KindGetBatch); err != nil {
		return GetReq{}, err
	}
	return g, nil
}

// SaturatedMsg is the KindSaturated payload.
type SaturatedMsg struct {
	// RetryAfterMs is the shard's hint for when an insert may succeed
	// again. Schedulers should spill to another shard first and only
	// sleep when every shard is saturated.
	RetryAfterMs uint32
}

// AppendSaturated appends s's wire encoding to dst.
func AppendSaturated(dst []byte, s SaturatedMsg) []byte {
	return binary.BigEndian.AppendUint32(dst, s.RetryAfterMs)
}

// DecodeSaturated parses a KindSaturated payload.
func DecodeSaturated(b []byte) (SaturatedMsg, error) {
	p := payloadReader{b: b}
	s := SaturatedMsg{RetryAfterMs: p.u32()}
	if err := p.finish(KindSaturated); err != nil {
		return SaturatedMsg{}, err
	}
	return s, nil
}

// framedConn is a framed connection: buffered reads, single-write frames,
// and reusable read/write buffers. Not safe for concurrent use; the
// protocol is strictly request/response per connection.
type framedConn struct {
	c    net.Conn
	r    io.Reader
	hdr  [HeaderSize]byte
	rbuf []byte
	wbuf []byte
	max  int
}

func newFramedConn(c net.Conn, maxPayload int) *framedConn {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &framedConn{c: c, r: c, max: maxPayload}
}

// read reads one frame. The returned payload aliases the connection's
// read buffer and is valid until the next read.
func (fc *framedConn) read() (Frame, error) {
	if _, err := io.ReadFull(fc.r, fc.hdr[:]); err != nil {
		return Frame{}, err
	}
	k, n, err := parseHeader(fc.hdr[:], fc.max)
	if err != nil {
		return Frame{}, err
	}
	if cap(fc.rbuf) < n {
		fc.rbuf = make([]byte, n)
	}
	buf := fc.rbuf[:n]
	if _, err := io.ReadFull(fc.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return Frame{Kind: k, Payload: buf}, nil
}

// write sends one frame as a single Write call.
func (fc *framedConn) write(k Kind, payload []byte) error {
	fc.wbuf = AppendFrame(fc.wbuf[:0], k, payload)
	_, err := fc.c.Write(fc.wbuf)
	return err
}

// writeErr sends a typed KindErr frame for err (see CodeOf).
func (fc *framedConn) writeErr(err error) error {
	return fc.write(KindErr, AppendErrMsg(nil, ErrMsg{Code: CodeOf(err), Msg: err.Error()}))
}

func (fc *framedConn) Close() error { return fc.c.Close() }
