package remote

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"salsa/internal/backoff"
	"salsa/internal/chaos"
	"salsa/internal/flight"
	"salsa/internal/netchaos"
)

// ClusterScenario is one cell of the cluster fault matrix: which paths
// get which netchaos schedules, whether a quiesce handoff fires
// mid-round, and what the exactly-once verdict may tolerate.
//
// Fault scoping matters: producer-path and handoff-path faults of any
// kind are exactly-once-safe (the idempotent PUT_BATCH retry collapses
// lost-ACK ambiguity), but a worker-path fault that destroys an
// in-flight TASKS frame loses committed tasks — retrieval is
// at-most-once past the server's commit (DESIGN §14). Scenarios using
// s2c worker faults must carry a KillBudget sized to the fault's #count
// cap times the batch size.
type ClusterScenario struct {
	Name string
	// ProdSpec is armed on both producer-path proxies, WorkSpec on both
	// worker-path proxies, HandoffSpec on the quiesce handoff proxy
	// (netchaos schedule grammar, e.g. "s2c=reset@0.03#6").
	ProdSpec, WorkSpec, HandoffSpec string
	// Quiesce drains shard 0 into shard 1 (through the handoff proxy)
	// once a fifth of the task universe has been delivered.
	Quiesce bool
	// WorkersAfterQuiesce spawns that many extra workers aimed at the
	// draining shard after the handoff: they must be refused with
	// CodeDraining and fail over to the survivor.
	WorkersAfterQuiesce int
	// WorkersShard1 homes every worker on shard 1, so shard 0's tasks
	// can only surface through the quiesce handoff.
	WorkersShard1 bool
	// KillBudget is the tolerated task loss for the round.
	KillBudget int64
	// AssertDedup requires at least one dedup replay (the scenario's
	// faults must force a retry of a committed batch).
	AssertDedup bool
	// AssertHandoff requires the quiesce to succeed having moved >= 1
	// task, with the count visible in shard 0's telemetry.
	AssertHandoff bool
}

// ErrVacuousRound marks a round whose exactly-once verdict held but
// whose coverage assertion (AssertDedup / AssertHandoff) was never
// exercised: the seeded fault schedule happened to miss the window it
// aims at. Fault coins are deterministic per (seed, site, rule, visit),
// but visit counts depend on real TCP chunking and goroutine timing, so
// whether a reset lands on a committed ACK varies run to run. Callers
// should re-roll the seed a bounded number of times rather than fail —
// a genuine dedup or handoff regression surfaces as duplicates, losses,
// or a timeout, which are hard failures and never carry this sentinel.
var ErrVacuousRound = errors.New("fault schedule missed its target window")

// ClusterOptions configures RunCluster.
type ClusterOptions struct {
	Scenario ClusterScenario
	// Seed makes the round replayable: every proxy fault decision and
	// every client backoff delay derives from it.
	Seed int64
	// Producers (default 3) each publish PerProducer (default 3000)
	// tasks in Batch-sized runs (default 128).
	Producers   int
	PerProducer int
	Batch       int
	// WorkersPerShard (default 2) workers home on each shard.
	WorkersPerShard int
	// AuthToken is the cluster shared secret (default "cluster-secret");
	// every client and the quiesce handoff carry it.
	AuthToken string
	// Timeout bounds the round. Default 90s.
	Timeout time.Duration
	// FlightDump, when non-empty, arms the flight recorder and writes
	// shard 0's black box there if the round fails.
	FlightDump string
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...any)
}

// ClusterResult is the round's merged accounting: ledger verdict inputs,
// fault counts per proxy, and the replay specs.
type ClusterResult struct {
	Delivered, Dups, Lost int64
	// DedupHits, Reconnects, HandoffTasks are summed over both shards.
	DedupHits, Reconnects, HandoffTasks int64
	// Quiesced reports a successful handoff; Moved is its task count.
	Quiesced bool
	Moved    int64
	// Faults maps proxy name -> action -> fired count.
	Faults map[string]map[string]int64
	// Specs maps proxy name -> the schedule spec it ran (replay artifact).
	Specs map[string]string
}

func (o *ClusterOptions) defaults() {
	if o.Producers <= 0 {
		o.Producers = 3
	}
	if o.PerProducer <= 0 {
		o.PerProducer = 3000
	}
	if o.Batch <= 0 {
		o.Batch = 128
	}
	if o.WorkersPerShard <= 0 {
		o.WorkersPerShard = 2
	}
	if o.AuthToken == "" {
		o.AuthToken = "cluster-secret"
	}
	if o.Timeout <= 0 {
		o.Timeout = 90 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// RunCluster drives one cluster fault round: two real shard servers on
// loopback TCP, every client path routed through a netchaos fault proxy,
// a producer fleet with failover + idempotent retry, a worker fleet with
// redial/failover, and (per scenario) a mid-round quiesce handoff —
// verified with exactly-once ledger accounting under the scenario's
// budget. Every fault and backoff decision is a pure function of
// o.Seed, so a failing round replays.
func RunCluster(o ClusterOptions) (ClusterResult, error) {
	o.defaults()
	sc := o.Scenario
	var res ClusterResult

	fail := func(err error) (ClusterResult, error) { return res, err }
	// Both shards share the process-global flight recorder, so each gets
	// a disjoint actor-id range: shard i records as ids
	// [i*flightStride, i*flightStride+258) — per-actor rings stay
	// single-writer. One stride covers the larger of the two handle
	// kinds (House+MaxWorkers+1 = 258 consumers vs Lanes+1 = 5
	// producers).
	const flightStride = 1 + 256 + 1
	if o.FlightDump != "" && flight.Compiled {
		flight.Enable(flight.Options{
			Consumers: 2 * flightStride,
			Producers: flightStride + 5, // shard 1's producer range ends at stride+Lanes+1
			RingSize:  flight.DefaultRingSize,
		})
		defer flight.Reset()
		fail = func(err error) (ClusterResult, error) {
			if _, werr := flight.CaptureToFile(o.FlightDump, "cluster-chaos-fail", err.Error(), true); werr != nil {
				return res, fmt.Errorf("%w (flight dump %s failed: %v)", err, o.FlightDump, werr)
			}
			return res, fmt.Errorf("%w\nflight dump: %s", err, o.FlightDump)
		}
	}

	// Two shards. Worker budgets are lifetime (redials burn them), so
	// they are sized for heavy churn, and the lease is short so a
	// blackholed worker is declared dead quickly.
	mkServer := func(shard int) (*Server, error) {
		return NewServer("127.0.0.1:0", Options{
			Lanes: 4, House: 1, MaxWorkers: 256,
			ChunkSize:      256,
			LeaseTimeout:   700 * time.Millisecond,
			QuiesceTimeout: 20 * time.Second,
			AuthToken:      o.AuthToken,
			FlightBase:     shard * flightStride,
			Logf:           o.Logf,
		})
	}
	srv := make([]*Server, 2)
	for i := range srv {
		s, err := mkServer(i)
		if err != nil {
			return fail(fmt.Errorf("cluster: shard %d: %w", i, err))
		}
		defer s.Close()
		srv[i] = s
	}

	// Fault proxies: a producer-path and a worker-path proxy per shard
	// (so worker-path faults cannot leak onto the exactly-once producer
	// path) plus the handoff proxy in front of shard 1.
	res.Faults = map[string]map[string]int64{}
	res.Specs = map[string]string{}
	proxies := map[string]*netchaos.Proxy{}
	mkProxy := func(name, target, spec string, salt uint64) (*netchaos.Proxy, error) {
		sched, err := netchaos.ParseSchedule(uint64(o.Seed)^salt, spec)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s schedule %q: %w", name, spec, err)
		}
		p, err := netchaos.Listen(target, sched)
		if err != nil {
			return nil, fmt.Errorf("cluster: %s proxy: %w", name, err)
		}
		proxies[name] = p
		res.Specs[name] = spec
		return p, nil
	}
	var prodProxy, workProxy [2]*netchaos.Proxy
	for i := 0; i < 2; i++ {
		var err error
		if prodProxy[i], err = mkProxy(fmt.Sprintf("prod%d", i), srv[i].Addr(), sc.ProdSpec, uint64(i+1)*0x9e37); err != nil {
			return fail(err)
		}
		if workProxy[i], err = mkProxy(fmt.Sprintf("work%d", i), srv[i].Addr(), sc.WorkSpec, uint64(i+1)*0x79b9); err != nil {
			return fail(err)
		}
	}
	handoffProxy, err := mkProxy("handoff", srv[1].Addr(), sc.HandoffSpec, 0x7f4a)
	if err != nil {
		return fail(err)
	}
	defer func() {
		for name, p := range proxies {
			res.Faults[name] = p.Faults()
			p.Close()
		}
	}()

	ledger := chaos.NewLedger(o.Producers, o.PerProducer)
	ctx, cancel := context.WithTimeout(context.Background(), o.Timeout)
	defer cancel()
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	done := func() bool {
		if ledger.Drained() {
			return true
		}
		select {
		case <-stop:
			return true
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}
	sleepUnlessDone := func(d time.Duration) {
		select {
		case <-stop:
		case <-ctx.Done():
		case <-time.After(d):
		}
	}
	errs := make(chan error, o.Producers+2*o.WorkersPerShard+sc.WorkersAfterQuiesce+4)
	var wg sync.WaitGroup

	// Workers: pull through the worker-path proxies, redial with seeded
	// backoff on any error, and fail over to the other shard on a typed
	// draining/capacity refusal. Deliveries land in the ledger.
	prodAddrs := []string{prodProxy[0].Addr(), prodProxy[1].Addr()}
	workAddrs := []string{workProxy[0].Addr(), workProxy[1].Addr()}
	runWorker := func(wi, home int) {
		defer wg.Done()
		bo := backoff.Expo{Max: 300 * time.Millisecond, Seed: uint64(o.Seed) ^ uint64(wi+1)*0xbf58476d1ce4e5b9}
		cur := home
		for !done() {
			w, err := DialWorker(workAddrs[cur], WorkerOptions{
				Token:       o.AuthToken,
				OpTimeout:   2 * time.Second,
				DialRetries: 1,
				BackoffSeed: uint64(o.Seed) ^ uint64(wi*2+cur+1),
			})
			if err != nil {
				if errors.Is(err, ErrDraining) || errors.Is(err, ErrCapacity) {
					cur = 1 - cur // the shard left the cluster: fail over
				}
				sleepUnlessDone(bo.Next())
				continue
			}
			bo.Reset()
			for !done() {
				bodies, gerr := w.GetBatch(o.Batch, 50*time.Millisecond)
				if gerr != nil {
					if errors.Is(gerr, ErrDraining) {
						cur = 1 - cur
					}
					break // redial (possibly on the other shard)
				}
				for _, b := range bodies {
					if len(b) != 8 {
						errs <- fmt.Errorf("cluster: worker %d: task body of %d bytes", wi, len(b))
						halt()
						return
					}
					if rerr := ledger.Record(int(binary.BigEndian.Uint32(b)), int(binary.BigEndian.Uint32(b[4:]))); rerr != nil {
						errs <- rerr
						halt()
						return
					}
				}
			}
			w.Close()
		}
	}
	for i := 0; i < 2*o.WorkersPerShard; i++ {
		home := i % 2
		if sc.WorkersShard1 {
			home = 1
		}
		wg.Add(1)
		go runWorker(i, home)
	}

	// Producers: one fleet member per producer id, routed through the
	// producer-path proxies with failover and idempotent retry. Bodies
	// carry the (producer, seq) ledger identity.
	var producersLeft atomic.Int64
	producersLeft.Store(int64(o.Producers))
	for pi := 0; pi < o.Producers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			defer producersLeft.Add(-1)
			pr, err := DialProducer(prodAddrs, ProducerOptions{
				Home:        pi % 2,
				Token:       o.AuthToken,
				OpTimeout:   2 * time.Second,
				Retries:     3,
				DialRetries: 3,
				BackoffSeed: uint64(o.Seed) ^ uint64(pi+1)*0x94d049bb133111eb,
			})
			if err != nil {
				errs <- fmt.Errorf("cluster: producer %d: %w", pi, err)
				halt()
				return
			}
			defer pr.Close()
			body := func(seq int) []byte {
				b := make([]byte, 8)
				binary.BigEndian.PutUint32(b, uint32(pi))
				binary.BigEndian.PutUint32(b[4:], uint32(seq))
				return b
			}
			run := make([][]byte, 0, o.Batch)
			for seq := 0; seq < o.PerProducer; seq++ {
				run = append(run, body(seq))
				if len(run) == o.Batch || seq == o.PerProducer-1 {
					if err := pr.Produce(ctx, run); err != nil {
						errs <- fmt.Errorf("cluster: producer %d: %w", pi, err)
						halt()
						return
					}
					run = run[:0]
				}
			}
		}(pi)
	}

	// Quiesce controller: once a fifth of the universe has been
	// delivered (or the producers finish first), drain shard 0 into
	// shard 1 through the handoff proxy, retrying through injected
	// faults. Late workers then aim at the drained shard to exercise
	// the refusal/failover path.
	var quiesceMoved atomic.Int64
	var quiesced atomic.Bool
	if sc.Quiesce {
		wg.Add(1)
		go func() {
			defer wg.Done()
			trigger := ledger.Want() / 5
			for !done() && ledger.Delivered() < trigger && producersLeft.Load() > 0 {
				sleepUnlessDone(5 * time.Millisecond)
			}
			if ctx.Err() != nil {
				return
			}
			var qerr error
			for attempt := 0; attempt < 3; attempt++ {
				var m int64
				m, qerr = srv[0].Quiesce(handoffProxy.Addr())
				quiesceMoved.Add(m)
				if qerr == nil {
					quiesced.Store(true)
					break
				}
				if errors.Is(qerr, ErrDraining) { // already drained by a retry race
					quiesced.Store(true)
					qerr = nil
					break
				}
				o.Logf("cluster: quiesce attempt %d: %v", attempt, qerr)
			}
			if qerr != nil && sc.AssertHandoff {
				errs <- fmt.Errorf("cluster: quiesce never succeeded (%v): %w", qerr, ErrVacuousRound)
				halt()
				return
			}
			for i := 0; i < sc.WorkersAfterQuiesce; i++ {
				wg.Add(1)
				go runWorker(1000+i, 0) // aimed at the drained shard: must fail over
			}
		}()
	}

	// Progress monitor: end the round when the ledger drains, or — on
	// budgeted-loss rounds, where it never will — when the producers are
	// done and delivery has been flat for a grace window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last, lastAt := int64(-1), time.Now()
		for {
			if ledger.Drained() {
				halt()
				return
			}
			select {
			case <-stop:
				return
			case <-ctx.Done():
				halt()
				return
			case <-time.After(100 * time.Millisecond):
			}
			d := ledger.Delivered()
			if d != last {
				last, lastAt = d, time.Now()
				continue
			}
			if producersLeft.Load() == 0 && time.Since(lastAt) > 3*time.Second {
				halt()
				return
			}
		}
	}()

	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	var firstErr error
	select {
	case <-wgDone:
	case firstErr = <-errs:
		halt()
		<-wgDone
	}
	if firstErr == nil {
		select {
		case firstErr = <-errs:
		default:
		}
	}

	// Merge the per-shard wire counters and the fault census.
	for _, s := range srv {
		snap := s.TelemetrySnapshot()
		res.DedupHits += snap.RemoteDedupHits
		res.Reconnects += snap.RemoteReconnects
		res.HandoffTasks += snap.RemoteHandoffTasks
	}
	res.Delivered = ledger.Delivered()
	res.Dups = ledger.Dups()
	res.Lost = ledger.Lost()
	res.Quiesced = quiesced.Load()
	res.Moved = quiesceMoved.Load()

	if firstErr != nil {
		return fail(fmt.Errorf("cluster: %w", firstErr))
	}
	if err := ctx.Err(); err != nil && !ledger.Drained() {
		return fail(fmt.Errorf("cluster: round timed out: delivered %d of %d", ledger.Delivered(), ledger.Want()))
	}
	if err := ledger.Verify(sc.KillBudget); err != nil {
		return fail(fmt.Errorf("cluster: %s", err))
	}
	if sc.AssertDedup && res.DedupHits < 1 {
		return fail(fmt.Errorf("cluster: expected >= 1 dedup replay, got 0 (no retry of a committed batch was forced): %w", ErrVacuousRound))
	}
	if sc.AssertHandoff {
		if !res.Quiesced {
			return fail(fmt.Errorf("cluster: quiesce handoff never completed: %w", ErrVacuousRound))
		}
		if res.Moved < 1 || res.HandoffTasks < 1 {
			return fail(fmt.Errorf("cluster: quiesce moved %d tasks (telemetry %d), want >= 1: %w", res.Moved, res.HandoffTasks, ErrVacuousRound))
		}
	}
	o.Logf("cluster: PASS — delivered %d (dups %d, lost %d, budget %d), dedup hits %d, reconnects %d, handoff %d",
		res.Delivered, res.Dups, res.Lost, sc.KillBudget, res.DedupHits, res.Reconnects, res.HandoffTasks)
	return res, nil
}
