package flight

import (
	"fmt"
	"sync/atomic"
	"time"
)

// The stall watchdog turns the recorder into an active black box: a
// consumer that entered a blocking retrieval (BeginOp) and has neither
// finished it nor advanced its ring past the deadline is declared stalled,
// and the watchdog captures an automatic dump with all-goroutine stacks
// and whatever context the harness supplies (membership epoch, schedule).
//
// Progress has two signals on purpose: EndOp catches ordinary completion,
// and ring movement catches a consumer that is alive inside one long
// retrieval (a steal chain grinding through victims is progress, even
// when the Get has not returned yet).
//
// All clocks live here, not on the hot path: BeginOp publishes an opaque
// token, and the watchdog times how long it has been observing the same
// token, exactly as it times how long a ring has been static. An op is
// stalled only once both its token and its ring have sat unchanged across
// a full deadline of watchdog observation.

// WatchdogOptions configures StartWatchdog.
type WatchdogOptions struct {
	// Deadline is how long a blocking retrieval may go without progress
	// before it is declared stalled. 0 means DefaultStallDeadline.
	Deadline time.Duration
	// Interval is the poll period. 0 means Deadline/4 (min 1ms).
	Interval time.Duration
	// DumpPath, when non-empty, is where stall dumps are written.
	DumpPath string
	// Context, when non-nil, supplies harness context (membership epoch,
	// live set) captured into the dump's metadata at stall time.
	Context func() string
	// OnStall, when non-nil, is invoked (on the watchdog goroutine) for
	// each stall verdict after the dump attempt. Tests hook it.
	OnStall func(consumer int, stalledFor time.Duration, d *Dump)
	// Cooldown rate-limits dumps: after one stall verdict the watchdog
	// stays quiet this long. 0 means 5×Deadline.
	Cooldown time.Duration
}

// DefaultStallDeadline is WatchdogOptions.Deadline's zero-value meaning.
const DefaultStallDeadline = 2 * time.Second

// StartWatchdog starts the stall watchdog against the currently installed
// recorder and returns a stop function. With no recorder installed (or a
// salsa_noflight build) it is a no-op. The watchdog holds the recorder it
// started with: a later Enable installs a new recorder and the old
// watchdog retires itself on its next tick.
func StartWatchdog(o WatchdogOptions) (stop func()) {
	r := installed()
	if !Compiled || r == nil {
		return func() {}
	}
	if o.Deadline <= 0 {
		o.Deadline = DefaultStallDeadline
	}
	if o.Interval <= 0 {
		o.Interval = o.Deadline / 4
		if o.Interval < time.Millisecond {
			o.Interval = time.Millisecond
		}
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * o.Deadline
	}
	done := make(chan struct{})
	var stopped atomic.Bool
	go watch(r, o, done)
	return func() {
		if stopped.CompareAndSwap(false, true) {
			close(done)
		}
	}
}

func watch(r *Recorder, o WatchdogOptions, done <-chan struct{}) {
	lastPos := make([]uint64, len(r.consumers))
	// lastMove[i] is the recorder-relative ns when consumer i's ring last
	// advanced; lastTok/tokSince track the in-flight op token the same way
	// (both seeded at start so a pre-existing park gets a full deadline
	// before its first verdict).
	lastMove := make([]int64, len(r.consumers))
	lastTok := make([]int64, len(r.consumers))
	tokSince := make([]int64, len(r.consumers))
	start := r.now()
	for i := range lastMove {
		lastMove[i] = start
		tokSince[i] = start
		lastPos[i] = r.consumers[i].newest()
		lastTok[i] = r.opMark[i].Load()
	}
	var quietUntil int64
	t := time.NewTicker(o.Interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		if installed() != r {
			return // a new recorder replaced ours; retire
		}
		now := r.now()
		for i := range r.consumers {
			pos := r.consumers[i].newest()
			if pos != lastPos[i] {
				lastPos[i] = pos
				lastMove[i] = now
				continue
			}
			tok := r.opMark[i].Load()
			if tok != lastTok[i] {
				lastTok[i] = tok
				tokSince[i] = now // a different (or no) op: restart its clock
			}
			if tok == 0 {
				lastMove[i] = now // idle: not a stall candidate
				continue
			}
			sinceOp := now - tokSince[i]
			sinceMove := now - lastMove[i]
			if sinceOp < int64(o.Deadline) || sinceMove < int64(o.Deadline) {
				continue
			}
			if now < quietUntil {
				continue
			}
			quietUntil = now + int64(o.Cooldown)
			stalledFor := time.Duration(min64(sinceOp, sinceMove))
			ctx := fmt.Sprintf("consumer %d stalled %v in a blocking retrieval (deadline %v)",
				i, stalledFor.Round(time.Millisecond), o.Deadline)
			if o.Context != nil {
				ctx += "\n" + o.Context()
			}
			d := Capture("watchdog-stall", ctx, true)
			if d != nil && o.DumpPath != "" {
				_ = d.WriteFile(o.DumpPath)
			}
			if o.OnStall != nil {
				o.OnStall(i, stalledFor, d)
			}
			lastMove[i] = now // restart the clocks instead of re-reporting
			tokSince[i] = now
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
