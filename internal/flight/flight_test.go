package flight

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// withRecorder runs f with a fresh armed recorder and guarantees Reset.
func withRecorder(t *testing.T, o Options, f func()) {
	t.Helper()
	if !Compiled {
		t.Skip("flight recorder compiled out (salsa_noflight)")
	}
	Enable(o)
	defer Reset()
	f()
}

func TestDisarmedRecordIsNoop(t *testing.T) {
	Reset()
	RecordC(0, KTakeFast, 1, 2, 3)
	RecordP(0, KChunkPublish, 1, 2, 3)
	RecordControl(KMemberJoin, 1, 2, 3)
	BeginOp(0)
	EndOp(0)
	if d := Capture("test", "", false); d != nil {
		t.Fatalf("Capture with no recorder = %+v, want nil", d)
	}
}

func TestRecordCaptureRoundTrip(t *testing.T) {
	withRecorder(t, Options{Consumers: 2, Producers: 1, RingSize: 16}, func() {
		RecordP(0, KChunkPublish, 42, 1, 0)
		RecordC(0, KTakeFast, 42, 7, 0)
		RecordC(1, KTakeSteal, 42, 7, 1)
		RecordControl(KMemberCrash, 3, 1, 0)
		d := Capture("test", "ctx", false)
		if d == nil {
			t.Fatal("Capture = nil with recorder installed")
		}
		if d.Meta.Reason != "test" || d.Meta.Context != "ctx" {
			t.Fatalf("meta = %+v", d.Meta)
		}
		if len(d.Rings) != 4 {
			t.Fatalf("rings = %d, want 4 (2 consumers + 1 producer + control)", len(d.Rings))
		}
		tl := d.Timeline()
		if len(tl) != 4 {
			t.Fatalf("timeline = %d events, want 4", len(tl))
		}
		// Binary round trip preserves every event.
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		d2, err := ReadDump(&buf)
		if err != nil {
			t.Fatalf("ReadDump: %v", err)
		}
		tl2 := d2.Timeline()
		if len(tl2) != len(tl) {
			t.Fatalf("round trip: %d events, want %d", len(tl2), len(tl))
		}
		for i := range tl {
			if tl[i] != tl2[i] {
				t.Fatalf("event %d: %+v != %+v", i, tl[i], tl2[i])
			}
		}
	})
}

func TestRingWrapKeepsNewest(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 8}, func() {
		for i := 0; i < 20; i++ {
			RecordC(0, KTakeFast, uint64(i+1), int32(i), 0)
		}
		d := Capture("test", "", false)
		var evs []Event
		for _, rg := range d.Rings {
			if rg.Role == RoleConsumer {
				evs = rg.Events
			}
		}
		if len(evs) != 8 {
			t.Fatalf("kept %d events, want ring size 8", len(evs))
		}
		for i, e := range evs {
			wantSeq := uint64(13 + i) // 20 written, last 8 survive: seq 13..20
			if e.Seq != wantSeq || e.A != wantSeq {
				t.Fatalf("event %d = seq %d a %d, want %d", i, e.Seq, e.A, wantSeq)
			}
		}
	})
}

func TestPayloadPacking(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 8}, func() {
		// Negative b/c and a large 56-bit a must survive the packing.
		bigA := (uint64(1) << 56) - 5
		RecordC(0, KStealWin, bigA, -1, -42)
		d := Capture("test", "", false)
		tl := d.Timeline()
		if len(tl) != 1 {
			t.Fatalf("timeline = %d events, want 1", len(tl))
		}
		e := tl[0]
		if e.Kind != KStealWin || e.A != bigA || e.B != -1 || e.C != -42 {
			t.Fatalf("decoded %+v, want kind=%v a=%d b=-1 c=-42", e, KStealWin, bigA)
		}
	})
}

func TestOutOfRangeIDDropsAndCounts(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 8}, func() {
		RecordC(5, KTakeFast, 1, 0, 0)
		RecordP(-1, KChunkPublish, 1, 0, 0)
		if got := Dropped(); got != 2 {
			t.Fatalf("Dropped = %d, want 2", got)
		}
		if tl := Capture("test", "", false).Timeline(); len(tl) != 0 {
			t.Fatalf("timeline = %d events, want 0", len(tl))
		}
	})
}

// TestConcurrentReadersNeverTear hammers one ring from its owner while
// snapshotting concurrently; every decoded event must be internally
// consistent (A == Seq by construction here).
func TestConcurrentReadersNeverTear(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 16}, func() {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				RecordC(0, KTakeFast, i, int32(i), int32(i))
			}
		}()
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			d := Capture("test", "", false)
			for _, e := range d.Timeline() {
				if e.A != e.Seq || e.B != e.C {
					t.Errorf("torn event leaked: %+v", e)
				}
			}
		}
		close(stop)
		wg.Wait()
	})
}

func TestNextChunkIDMonotonic(t *testing.T) {
	if !Compiled {
		if NextChunkID() != 0 {
			t.Fatal("NextChunkID != 0 under salsa_noflight")
		}
		return
	}
	a, b := NextChunkID(), NextChunkID()
	if b <= a || a == 0 {
		t.Fatalf("ids not monotonic from 1: %d then %d", a, b)
	}
}

func TestDoubleTakeDetection(t *testing.T) {
	withRecorder(t, Options{Consumers: 3, Producers: 1, RingSize: 32}, func() {
		RecordP(0, KChunkPublish, 7, 1, 0)
		RecordC(1, KTakeFast, 7, 3, 0)         // victim commits slot 3
		RecordC(2, KStealWin, 7, 1, 0)         // thief steals the chunk
		RecordC(2, KTakeSteal, 7, 3, 1)        // thief takes slot 3 too
		RecordC(2, KTakeSteal, 7, 4, 0)        // a LOST take must not count
		RecordC(1, KTakeSlow, 7, 5, 0)         // lost slow-path CAS either
		r := Analyze(Capture("test", "", false))
		dts := r.DoubleTakes()
		if len(dts) != 1 {
			t.Fatalf("double takes = %d (%+v), want 1", len(dts), dts)
		}
		a := dts[0]
		if a.FID != 7 || a.Slot != 3 {
			t.Fatalf("anomaly at chunk %d slot %d, want 7/3", a.FID, a.Slot)
		}
		if len(a.Consumers) != 2 || a.Consumers[0] != 1 || a.Consumers[1] != 2 {
			t.Fatalf("consumers = %v, want [1 2]", a.Consumers)
		}
	})
}

func TestAnalyzeLifecycles(t *testing.T) {
	withRecorder(t, Options{Consumers: 3, Producers: 1, RingSize: 64}, func() {
		RecordP(0, KChunkPublish, 9, 0, 0)
		RecordC(0, KTakeFast, 9, 1, 0)
		RecordC(2, KStealWin, 9, 0, 0)
		RecordC(2, KTakeSteal, 9, 2, 1)
		RecordC(2, KChunkDrained, 9, 0, 0)
		r := Analyze(Capture("test", "", false))
		if len(r.Lifecycles) != 1 {
			t.Fatalf("lifecycles = %d, want 1", len(r.Lifecycles))
		}
		lc := r.Lifecycles[0]
		if lc.FID != 9 || lc.Publish == nil || lc.Drained == nil {
			t.Fatalf("lifecycle = %+v", lc)
		}
		if len(lc.Owners) != 2 || lc.Owners[0] != 0 || lc.Owners[1] != 2 {
			t.Fatalf("owners = %v, want [0 2]", lc.Owners)
		}
		if len(lc.Takes) != 2 {
			t.Fatalf("takes = %d, want 2", len(lc.Takes))
		}
		if len(r.DoubleTakes()) != 0 {
			t.Fatalf("unexpected double takes: %+v", r.DoubleTakes())
		}
	})
}

func TestStealStormDetection(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 128}, func() {
		for i := 0; i < stealStormCount; i++ {
			RecordC(0, KStealFail, uint64(i+1), 1, 0)
		}
		r := Analyze(Capture("test", "", false))
		found := false
		for _, a := range r.Anomalies {
			if a.Kind == "steal-storm" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no steal-storm in %+v", r.Anomalies)
		}
	})
}

func TestExcerptTruncates(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 64}, func() {
		for i := 0; i < 10; i++ {
			RecordC(0, KTakeFast, uint64(i+1), 0, 0)
		}
		d := Capture("test", "", false)
		got := Excerpt(d, 3)
		if want := "... (7 earlier events)"; !bytes.Contains([]byte(got), []byte(want)) {
			t.Fatalf("excerpt missing %q:\n%s", want, got)
		}
	})
}

func TestWatchdogFlagsStalledConsumer(t *testing.T) {
	withRecorder(t, Options{Consumers: 2, Producers: 1, RingSize: 16}, func() {
		BeginOp(0) // consumer 0 enters a retrieval and never progresses
		stalls := make(chan int, 4)
		stop := StartWatchdog(WatchdogOptions{
			Deadline: 20 * time.Millisecond,
			Interval: 5 * time.Millisecond,
			OnStall: func(id int, d time.Duration, dump *Dump) {
				if dump == nil || dump.Meta.Stacks == "" {
					t.Errorf("stall dump missing stacks: %+v", dump)
				}
				stalls <- id
			},
		})
		defer stop()
		select {
		case id := <-stalls:
			if id != 0 {
				t.Fatalf("stalled consumer = %d, want 0", id)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("watchdog never fired")
		}
	})
}

func TestWatchdogIgnoresProgress(t *testing.T) {
	withRecorder(t, Options{Consumers: 1, Producers: 1, RingSize: 16}, func() {
		BeginOp(0)
		stalls := make(chan int, 4)
		stop := StartWatchdog(WatchdogOptions{
			Deadline: 50 * time.Millisecond,
			Interval: 5 * time.Millisecond,
			OnStall:  func(id int, d time.Duration, dump *Dump) { stalls <- id },
		})
		defer stop()
		// Keep the ring moving past several deadlines: no stall verdict.
		deadline := time.Now().Add(200 * time.Millisecond)
		i := uint64(0)
		for time.Now().Before(deadline) {
			i++
			RecordC(0, KStealFail, i, 0, 0)
			time.Sleep(2 * time.Millisecond)
		}
		EndOp(0)
		select {
		case id := <-stalls:
			t.Fatalf("watchdog flagged consumer %d despite progress", id)
		default:
		}
	})
}

// TestOrphanedChunkHorizon checks the orphan detector's evidence rules on
// hand-built dumps: absence of a take only counts when the rings are
// complete (no wrap evicted it) and the chunk is old enough that "still in
// flight" is ruled out.
func TestOrphanedChunkHorizon(t *testing.T) {
	const (
		old    = int64(0)
		young  = orphanMinAge / 2
		newest = orphanMinAge * 3
	)
	ev := func(role Role, id int, seq uint64, ts int64, k Kind, a uint64, b, c int32) Event {
		return Event{Role: role, ID: id, Seq: seq, TS: ts, Kind: k, A: a, B: b, C: c}
	}
	orphans := func(d *Dump) []uint64 {
		var fids []uint64
		for _, an := range Analyze(d).Anomalies {
			if an.Kind == "orphaned-chunk" {
				fids = append(fids, an.FID)
			}
		}
		return fids
	}

	// Complete rings: an old untouched chunk is an orphan, a young one is
	// presumed in flight.
	d := &Dump{Rings: []RingDump{
		{Role: RoleProducer, ID: 0, Events: []Event{
			ev(RoleProducer, 0, 1, old, KChunkPublish, 5, 0, 0),
			ev(RoleProducer, 0, 2, newest-young, KChunkPublish, 6, 0, 0),
		}},
		{Role: RoleConsumer, ID: 0, Events: []Event{
			ev(RoleConsumer, 0, 1, newest, KGetEmpty, 0, 0, 0),
		}},
	}}
	if got := orphans(d); len(got) != 1 || got[0] != 5 {
		t.Fatalf("complete rings: orphans = %v, want [5]", got)
	}

	// Same dump, but the consumer ring wrapped (oldest Seq > 1) after the
	// old publish: the chunk's take may have been evicted, so the old
	// chunk must no longer be flagged.
	d.Rings[1].Events = []Event{
		ev(RoleConsumer, 0, 900, newest-1, KGetEmpty, 0, 0, 0),
		ev(RoleConsumer, 0, 901, newest, KGetEmpty, 0, 0, 0),
	}
	if got := orphans(d); len(got) != 0 {
		t.Fatalf("wrapped ring: orphans = %v, want none (horizon must mask)", got)
	}
}
