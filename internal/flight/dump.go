package flight

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// Dump is a point-in-time capture of the recorder: metadata plus every
// ring's surviving events. It is what the watchdog and the FAIL paths
// write to disk and what salsa-doctor loads.
type Dump struct {
	Meta  Meta       `json:"meta"`
	Rings []RingDump `json:"rings"`
}

// Meta describes the circumstances of a capture.
type Meta struct {
	// Reason says why the dump was taken ("chaos-fail", "watchdog-stall",
	// "smoke", ...).
	Reason string `json:"reason"`
	// Context is free-form harness context (the failing error, membership
	// epoch, schedule spec).
	Context string `json:"context,omitempty"`
	// CapturedAt is the wall clock at capture; EnabledAt anchors the
	// events' monotonic TS values (TS 0 == EnabledAt).
	CapturedAt time.Time `json:"captured_at"`
	EnabledAt  time.Time `json:"enabled_at"`
	// Consumers/Producers/RingSize echo the recorder's Options.
	Consumers int `json:"consumers"`
	Producers int `json:"producers"`
	RingSize  int `json:"ring_size"`
	// Dropped counts events lost to ring-count overflow.
	Dropped int64 `json:"dropped,omitempty"`
	// Stacks is an optional all-goroutine stack capture (watchdog dumps).
	Stacks string `json:"stacks,omitempty"`
}

// RingDump is one ring's events, oldest first.
type RingDump struct {
	Role   Role    `json:"role"`
	ID     int     `json:"id"`
	Events []Event `json:"events"`
}

// Capture snapshots the installed recorder. Returns nil when no recorder
// is installed (or the package is compiled out). Safe to call while
// writers are still recording: torn slots are skipped, never misread.
func Capture(reason, context string, withStacks bool) *Dump {
	r := installed()
	if r == nil {
		return nil
	}
	d := &Dump{Meta: Meta{
		Reason:     reason,
		Context:    context,
		CapturedAt: time.Now(),
		EnabledAt:  r.wall,
		Consumers:  len(r.consumers),
		Producers:  len(r.producers),
		RingSize:   int(r.consumers[0].mask + 1),
		Dropped:    r.dropped.Load(),
	}}
	if withStacks {
		buf := make([]byte, 1<<20)
		d.Meta.Stacks = string(buf[:runtime.Stack(buf, true)])
	}
	for id, rg := range r.consumers {
		if ev := rg.snapshot(RoleConsumer, id); len(ev) > 0 {
			d.Rings = append(d.Rings, RingDump{Role: RoleConsumer, ID: id, Events: ev})
		}
	}
	for id, rg := range r.producers {
		if ev := rg.snapshot(RoleProducer, id); len(ev) > 0 {
			d.Rings = append(d.Rings, RingDump{Role: RoleProducer, ID: id, Events: ev})
		}
	}
	if ev := r.control.snapshot(RoleControl, 0); len(ev) > 0 {
		d.Rings = append(d.Rings, RingDump{Role: RoleControl, ID: 0, Events: ev})
	}
	return d
}

// Binary dump format (all integers little-endian):
//
//	magic    [8]byte  "SALSAFL1"
//	metaLen  uint32
//	meta     metaLen bytes of JSON (Meta)
//	nrings   uint32
//	per ring:
//	  role    uint8
//	  id      uint32
//	  nevents uint32
//	  events  nevents * 4 * uint64 (the ring wire words)
var dumpMagic = [8]byte{'S', 'A', 'L', 'S', 'A', 'F', 'L', '1'}

// WriteTo serializes the dump in the binary format above.
func (d *Dump) WriteTo(w io.Writer) (int64, error) {
	meta, err := json.Marshal(d.Meta)
	if err != nil {
		return 0, err
	}
	cw := &countWriter{w: w}
	if _, err := cw.Write(dumpMagic[:]); err != nil {
		return cw.n, err
	}
	var u32 [4]byte
	putU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := cw.Write(u32[:])
		return err
	}
	if err := putU32(uint32(len(meta))); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write(meta); err != nil {
		return cw.n, err
	}
	if err := putU32(uint32(len(d.Rings))); err != nil {
		return cw.n, err
	}
	var word [8]byte
	for _, rg := range d.Rings {
		if _, err := cw.Write([]byte{byte(rg.Role)}); err != nil {
			return cw.n, err
		}
		if err := putU32(uint32(rg.ID)); err != nil {
			return cw.n, err
		}
		if err := putU32(uint32(len(rg.Events))); err != nil {
			return cw.n, err
		}
		for _, e := range rg.Events {
			for _, v := range e.encode() {
				binary.LittleEndian.PutUint64(word[:], v)
				if _, err := cw.Write(word[:]); err != nil {
					return cw.n, err
				}
			}
		}
	}
	return cw.n, nil
}

// WriteFile writes the dump to path (0644), creating the parent directory
// if needed — FAIL paths must not lose the black box to a missing
// results/ dir on a fresh checkout.
func (d *Dump) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// maxDumpRings and maxDumpEvents bound what ReadDump will allocate from a
// length header, so a truncated or corrupt file fails instead of OOMing.
const (
	maxDumpRings  = 1 << 20
	maxDumpEvents = 1 << 26
)

// ReadDump parses a binary dump.
func ReadDump(r io.Reader) (*Dump, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("flight: reading magic: %w", err)
	}
	if magic != dumpMagic {
		return nil, fmt.Errorf("flight: bad magic %q (not a flight dump)", magic[:])
	}
	var u32 [4]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	metaLen, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("flight: reading meta length: %w", err)
	}
	if metaLen > maxDumpEvents {
		return nil, fmt.Errorf("flight: implausible meta length %d", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(r, metaBuf); err != nil {
		return nil, fmt.Errorf("flight: reading meta: %w", err)
	}
	d := &Dump{}
	if err := json.Unmarshal(metaBuf, &d.Meta); err != nil {
		return nil, fmt.Errorf("flight: decoding meta: %w", err)
	}
	nrings, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("flight: reading ring count: %w", err)
	}
	if nrings > maxDumpRings {
		return nil, fmt.Errorf("flight: implausible ring count %d", nrings)
	}
	var word [8]byte
	for ri := uint32(0); ri < nrings; ri++ {
		var roleB [1]byte
		if _, err := io.ReadFull(r, roleB[:]); err != nil {
			return nil, fmt.Errorf("flight: ring %d role: %w", ri, err)
		}
		id, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("flight: ring %d id: %w", ri, err)
		}
		nev, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("flight: ring %d event count: %w", ri, err)
		}
		if nev > maxDumpEvents {
			return nil, fmt.Errorf("flight: ring %d implausible event count %d", ri, nev)
		}
		rg := RingDump{Role: Role(roleB[0]), ID: int(id), Events: make([]Event, 0, nev)}
		for ei := uint32(0); ei < nev; ei++ {
			var w [ringWords]uint64
			for wi := range w {
				if _, err := io.ReadFull(r, word[:]); err != nil {
					return nil, fmt.Errorf("flight: ring %d event %d: %w", ri, ei, err)
				}
				w[wi] = binary.LittleEndian.Uint64(word[:])
			}
			rg.Events = append(rg.Events, decode(rg.Role, rg.ID, w))
		}
		d.Rings = append(d.Rings, rg)
	}
	return d, nil
}

// ReadDumpFile loads a binary dump from path.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}

// TruncationHorizon returns the earliest timestamp at which the dump is
// known complete. A ring whose oldest retained event has Seq > 1 wrapped:
// everything older than that event was evicted, so only events at or
// after the horizon can support absence-based reasoning ("no take was
// recorded"). 0 means no ring wrapped and the dump is complete.
func (d *Dump) TruncationHorizon() int64 {
	var h int64
	for _, rg := range d.Rings {
		if len(rg.Events) > 0 && rg.Events[0].Seq > 1 && rg.Events[0].TS > h {
			h = rg.Events[0].TS
		}
	}
	return h
}

// CaptureToFile captures the installed recorder and writes it to path in
// one step, returning the dump. A nil dump (no recorder) is not an error.
func CaptureToFile(path, reason, context string, withStacks bool) (*Dump, error) {
	d := Capture(reason, context, withStacks)
	if d == nil {
		return nil, nil
	}
	if err := d.WriteFile(path); err != nil {
		return d, err
	}
	return d, nil
}

// countWriter tracks bytes written for WriteTo's return value.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
