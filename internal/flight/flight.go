// Package flight is the pool's black box: an always-available, lock-free
// event journal that records the orderings SALSA's correctness argument is
// actually about — who published a chunk, who announced an index, who won
// the ownership CAS — without adding any ordering the algorithm does not
// already have.
//
// Layout. The recorder owns one fixed-size ring per consumer slot and one
// per producer slot, plus a single control ring for membership events.
// Every data ring is strictly single-writer: the owning goroutine (the
// consumer or producer whose id it is) is the only writer, so recording an
// event is a handful of plain atomic *stores* — load+store sequence
// numbers, never a read-modify-write — the same discipline as the counters
// and histograms in internal/stats. The control ring's writers are already
// serialized by the framework's membership lock, so it needs no extra
// synchronization either.
//
// Torn-read protocol. Dump and watchdog readers run concurrently with
// writers, so each event publishes through a per-slot sequence word: the
// writer stores 0 (invalidating the slot), the payload words, and finally
// the sequence number. A reader loads the sequence word, the payload, then
// the sequence word again; any mismatch means the writer lapped it mid-read
// and the slot is discarded as torn. The ring's cursor is a plain
// owner-local word that no reader touches — readers recover the newest
// sequence by scanning the per-slot sequence words — so appending an event
// costs exactly five atomic stores. No reader ever blocks a writer.
//
// Cost discipline. Sites call Record* through the same armed-atomic fast
// path as internal/failpoint: `Compiled && armed.Load() != 0` — one inlined
// atomic load when the recorder is compiled in but not enabled. Builds with
// the `salsa_noflight` tag set Compiled to constant false and every site
// body becomes dead code (see DESIGN.md §11). Arming is a control-plane
// operation (Enable/Disable/Reset, serialized on a mutex); one harness owns
// the recorder at a time, which is what keeps the per-id rings
// single-writer.
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates recorded events. The 8-bit value is packed into the
// event's third word, so there is room for 255 kinds.
type Kind uint8

const (
	// KNone marks an empty slot; never recorded.
	KNone Kind = iota

	// KChunkPublish: a producer obtained a chunk (fresh or recycled) and
	// published it into a pool. a = chunk flight id, b = owning consumer
	// (pool) id, c = chunk home node.
	KChunkPublish
	// KForceExpand: the whole access list was full and the producer
	// force-expanded the nearest pool. b = pool id.
	KForceExpand
	// KProduceFail: produce() on one pool failed for lack of spare
	// chunks. b = rejecting pool id.
	KProduceFail

	// KTakeFast: the owner committed a take on the CAS-free fast path
	// (plain TAKEN store after the post-announce ownership re-check).
	// a = chunk flight id, b = slot index.
	KTakeFast
	// KTakeSlow: the owner fell to the CAS slow path after losing
	// ownership. a = chunk flight id, b = slot index, c = 1 won / 0 lost.
	KTakeSlow
	// KTakeSteal: a thief's single-task CAS on a freshly stolen chunk.
	// a = chunk flight id, b = slot index, c = 1 won / 0 lost.
	KTakeSteal
	// KTakeBatch: a batched consume's run of CAS-free fast-path takes,
	// recorded as one event so the per-task journal cost amortizes across
	// the run. a = chunk flight id, b = first slot index, c = slot count
	// (the run covered slots [b, b+c)). Analysis expands it back into
	// per-slot takes.
	KTakeBatch

	// KStealWin: the thief won the two-CAS chunk steal. a = chunk flight
	// id, b = victim consumer id, c = thiefNode<<16 | victimNode.
	KStealWin
	// KStealFail: the ownership CAS lost. a = chunk flight id, b = victim
	// consumer id.
	KStealFail
	// KStealRescue: the steal reclaimed a chunk from a departed owner.
	// a = chunk flight id, b = departed owner id, c = announced index the
	// thief honored.
	KStealRescue
	// KRescueRescan: the post-CAS re-scan of a departed owner's announced
	// index advanced the rescue index. a = chunk flight id, b = departed
	// owner id, c = index advanced to.
	KRescueRescan
	// KChunkDrained: a chunk's last task was consumed and the chunk was
	// retired toward recycling. a = chunk flight id.
	KChunkDrained

	// KGetEmpty: a retrieval completed empty (checkEmpty confirmed ⊥).
	KGetEmpty
	// KCheckEmptyAbort: an emptiness probe aborted and restarted
	// (indicator reset or epoch moved). c = round reached.
	KCheckEmptyAbort
	// KPark: a blocking retrieval parked (backoff slept) waiting for work.
	KPark

	// KMemberJoin/KMemberRetire/KMemberCrash: membership epoch
	// transitions (control ring). b = consumer id, c = node; a = epoch.
	KMemberJoin
	KMemberRetire
	KMemberCrash

	// NumKinds is the number of defined kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	KNone:            "none",
	KChunkPublish:    "chunk-publish",
	KForceExpand:     "force-expand",
	KProduceFail:     "produce-fail",
	KTakeFast:        "take-fast",
	KTakeSlow:        "take-slow",
	KTakeSteal:       "take-steal",
	KTakeBatch:       "take-batch",
	KStealWin:        "steal-win",
	KStealFail:       "steal-fail",
	KStealRescue:     "steal-rescue",
	KRescueRescan:    "rescue-rescan",
	KChunkDrained:    "chunk-drained",
	KGetEmpty:        "get-empty",
	KCheckEmptyAbort: "checkempty-abort",
	KPark:            "park",
	KMemberJoin:      "member-join",
	KMemberRetire:    "member-retire",
	KMemberCrash:     "member-crash",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind(?)"
}

// Role says which class of goroutine owns a ring.
type Role uint8

const (
	// RoleConsumer rings are written by consumer goroutines.
	RoleConsumer Role = iota
	// RoleProducer rings are written by producer goroutines.
	RoleProducer
	// RoleControl is the single membership ring (writers serialized by
	// the framework's membership lock).
	RoleControl
)

// String returns the role's wire name.
func (r Role) String() string {
	switch r {
	case RoleConsumer:
		return "consumer"
	case RoleProducer:
		return "producer"
	case RoleControl:
		return "control"
	}
	return "role(?)"
}

// Event is one decoded journal entry.
type Event struct {
	// Role and ID identify the ring (and therefore the recording
	// goroutine): the consumer/producer id, or 0 for the control ring.
	Role Role `json:"role"`
	ID   int  `json:"id"`
	// Seq is the ring-local sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// TS is nanoseconds since the recorder was enabled (monotonic clock).
	TS int64 `json:"ts_ns"`
	// Kind discriminates the payload fields A, B, C (see the Kind docs).
	Kind Kind   `json:"kind"`
	A    uint64 `json:"a"`
	B    int32  `json:"b"`
	C    int32  `json:"c"`
}

// Event wire layout: 4 little-endian uint64 words.
//
//	w0 = seq   (published last; 0 marks an empty or in-flight slot)
//	w1 = ts    (ns since enable)
//	w2 = kind<<56 | a (56-bit payload, chunk flight id)
//	w3 = b<<32 | c    (two int32 payloads)
const (
	ringWords = 4
	maskA     = (uint64(1) << 56) - 1
)

func packW2(kind Kind, a uint64) uint64 { return uint64(kind)<<56 | a&maskA }
func packW3(b, c int32) uint64          { return uint64(uint32(b))<<32 | uint64(uint32(c)) }

func decode(role Role, id int, w [ringWords]uint64) Event {
	return Event{
		Role: role,
		ID:   id,
		Seq:  w[0],
		TS:   int64(w[1]),
		Kind: Kind(w[2] >> 56),
		A:    w[2] & maskA,
		B:    int32(uint32(w[3] >> 32)),
		C:    int32(uint32(w[3])),
	}
}

func (e Event) encode() [ringWords]uint64 {
	return [ringWords]uint64{e.Seq, uint64(e.TS), packW2(e.Kind, e.A), packW3(e.B, e.C)}
}

// ring is one single-writer event journal. pos is a plain word touched
// only by the owning goroutine — readers never load it; they recover the
// newest sequence with newest(), a scan of the per-slot sequence words —
// which keeps the append path at five atomic stores with no cursor store.
type ring struct {
	pos  uint64 // events ever written (== seq of the newest); owner-only
	_    [56]byte
	buf  []atomic.Uint64
	mask uint64
	// sharedPos is the cursor for multi-writer rings (recordShared); a
	// ring uses either pos (owner-only record) or sharedPos, never both.
	sharedPos atomic.Uint64
}

func newRing(size int) *ring {
	// Round up to a power of two so wrap is a mask, not a division.
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{buf: make([]atomic.Uint64, n*ringWords), mask: uint64(n - 1)}
}

// record appends one event. Owner-only: five atomic stores, no RMW, no
// atomic cursor update (pos is plain and owner-local).
func (r *ring) record(ts int64, kind Kind, a uint64, b, c int32) {
	seq := r.pos + 1
	i := ((seq - 1) & r.mask) * ringWords
	r.buf[i+0].Store(0) // invalidate: readers treat seq 0 as torn/empty
	r.buf[i+1].Store(uint64(ts))
	r.buf[i+2].Store(packW2(kind, a))
	r.buf[i+3].Store(packW3(b, c))
	r.buf[i+0].Store(seq) // publish
	r.pos = seq
}

// recordShared appends one event from any goroutine: the cursor is an
// atomic fetch-add instead of the owner-local counter. Two writers a full
// ring apart can collide on a slot; in most interleavings the torn slot
// fails snapshot's seq re-check and is skipped. The check is not
// airtight: if both writers invalidate, then both store their payload
// words, and one finally publishes its seq over the other's payload
// (A:inv, B:inv, A:fields, B:fields, A:seq), the slot reads as stable
// but its payload belongs to the other event — a misattributed record,
// not a crash. Hitting it needs two concurrent membership events racing
// exactly one full ring (RingSize events) apart, and the control ring
// only carries rare membership transitions against a DefaultRingSize of
// 4096 slots, so the residual window is accepted: the ring is a debug
// artifact, and a misattributed membership record skews a dump, never
// the pool.
func (r *ring) recordShared(ts int64, kind Kind, a uint64, b, c int32) {
	seq := r.sharedPos.Add(1)
	i := ((seq - 1) & r.mask) * ringWords
	r.buf[i+0].Store(0) // invalidate: readers treat seq 0 as torn/empty
	r.buf[i+1].Store(uint64(ts))
	r.buf[i+2].Store(packW2(kind, a))
	r.buf[i+3].Store(packW3(b, c))
	r.buf[i+0].Store(seq) // publish
}

// newest returns the highest published sequence number — the reader-side
// substitute for the owner-local cursor. Writing seq S+1 only invalidates
// the slot S+1 lands in, never the slot holding S (for any ring of at
// least two slots), so the scan's max is always the newest published
// event or better. Cold path: dump capture and watchdog ticks only.
func (r *ring) newest() uint64 {
	var max uint64
	for i := uint64(0); i < uint64(len(r.buf)); i += ringWords {
		if s := r.buf[i].Load(); s > max {
			max = s
		}
	}
	return max
}

// snapshot decodes the ring's surviving events, oldest first, skipping
// slots torn by a concurrent writer.
func (r *ring) snapshot(role Role, id int) []Event {
	pos := r.newest()
	size := r.mask + 1
	first := uint64(1)
	if pos > size {
		first = pos - size + 1
	}
	events := make([]Event, 0, pos-first+1)
	for seq := first; seq <= pos; seq++ {
		i := ((seq - 1) & r.mask) * ringWords
		var w [ringWords]uint64
		w[0] = r.buf[i+0].Load()
		if w[0] != seq {
			continue // overwritten (or mid-write) since we read pos
		}
		w[1] = r.buf[i+1].Load()
		w[2] = r.buf[i+2].Load()
		w[3] = r.buf[i+3].Load()
		if r.buf[i+0].Load() != seq {
			continue // writer lapped us between the two seq loads
		}
		events = append(events, decode(role, id, w))
	}
	return events
}

// Recorder is one armed journal: per-id rings plus the watchdog's
// per-consumer in-flight markers. At most one Recorder is installed at a
// time (Enable replaces, Reset removes).
type Recorder struct {
	consumers []*ring
	producers []*ring
	control   *ring
	// opMark[i] is the token of the blocking retrieval consumer i is
	// inside, 0 when idle. Written by the consumer (a plain counter bump
	// plus one store — no clock read on the hot path), read by the
	// watchdog, which clocks how long it has observed the same token
	// itself. opSeq[i] is the owner-local token source; tokens never
	// repeat, so the watchdog cannot mistake a new retrieval that reused
	// a value for one stuck op.
	opMark []atomic.Int64
	opSeq  []int64
	// epoch is the monotonic time origin for TS values; wall anchors it
	// for humans reading dumps.
	epoch time.Time
	wall  time.Time
	// clock is the event timestamp source when precise is false: the
	// enable-relative ns, advanced every clockTick by a dedicated ticker
	// goroutine, so stamping an event is one atomic load instead of an
	// OS clock read (tens of ns on some hosts — the single largest cost
	// of an armed event after the ring stores). Per-ring sequence numbers
	// keep exact per-goroutine order regardless; the coarse stamp only
	// bounds cross-ring interleaving resolution to clockTick. Harnesses
	// that capture low-rate, causally dense schedules (DST replays) set
	// Options.Precise to stamp events with the real clock instead.
	clock   atomic.Int64
	precise bool
	// dropped counts events whose id exceeded the allocated rings —
	// a sizing error, counted (RMW is fine here) instead of crashing.
	dropped atomic.Int64
}

var (
	// armed gates every record site; the disarmed fast path is one load.
	armed atomic.Int32
	// rec is the installed recorder (nil when none).
	rec atomic.Pointer[Recorder]
	// mu serializes Enable/Disable/Reset (control plane only).
	mu sync.Mutex
	// chunkIDs hands out chunk flight ids; see NextChunkID.
	chunkIDs atomic.Uint64
)

// Options sizes a recorder.
type Options struct {
	// Consumers and Producers are ring counts; ids at or above the count
	// are dropped (and counted), not recorded.
	Consumers, Producers int
	// RingSize is events retained per ring (rounded up to a power of
	// two). 0 means DefaultRingSize.
	RingSize int
	// Precise stamps every event with a real monotonic clock read
	// instead of the recorder's coarse shared clock (see Recorder.clock).
	// Set it for low-rate captures whose cross-ring event interleaving
	// must be exact — DST replays — and leave it off for production-rate
	// workloads, where the coarse clock is what keeps an armed event
	// cheap.
	Precise bool
}

// clockTick is the coarse clock's resolution. Well under every
// time-window constant the analyzer uses (steal-storm window, orphan
// minimum age), and two orders of magnitude finer than the default stall
// deadline.
const clockTick = 100 * time.Microsecond

// DefaultRingSize is the per-ring event capacity when Options.RingSize is 0.
const DefaultRingSize = 4096

// Enable installs and arms a fresh recorder. It replaces any previous one
// (whose events are discarded). The caller is the recorder's owner: the
// single-writer argument needs exactly one harness arming at a time.
func Enable(o Options) {
	if !Compiled {
		return
	}
	if o.RingSize <= 0 {
		o.RingSize = DefaultRingSize
	}
	if o.Consumers < 1 {
		o.Consumers = 1
	}
	if o.Producers < 1 {
		o.Producers = 1
	}
	r := &Recorder{
		consumers: make([]*ring, o.Consumers),
		producers: make([]*ring, o.Producers),
		control:   newRing(o.RingSize),
		opMark:    make([]atomic.Int64, o.Consumers),
		opSeq:     make([]int64, o.Consumers),
		epoch:     time.Now(),
		wall:      time.Now(),
		precise:   o.Precise,
	}
	for i := range r.consumers {
		r.consumers[i] = newRing(o.RingSize)
	}
	for i := range r.producers {
		r.producers[i] = newRing(o.RingSize)
	}
	mu.Lock()
	defer mu.Unlock()
	rec.Store(r)
	armed.Store(1)
	if !r.precise {
		// The coarse clock's ticker retires itself within one tick of the
		// recorder being replaced or reset.
		go func() {
			t := time.NewTicker(clockTick)
			defer t.Stop()
			for range t.C {
				if rec.Load() != r {
					return
				}
				r.clock.Store(r.now())
			}
		}()
	}
}

// Disable disarms recording but keeps the recorder installed, so its rings
// can still be captured (Capture) after the workload stops.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(0)
}

// Reset disarms and removes the recorder, discarding all events.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(0)
	rec.Store(nil)
}

// Enabled reports whether recording is armed. Constant false (and every
// guarded site dead code) under the salsa_noflight tag. Sites whose event
// arguments cost anything to evaluate (an atomic chunk-id load, a packed
// node pair) guard on Enabled so the disarmed path stays one atomic load.
func Enabled() bool { return Compiled && armed.Load() != 0 }

// now returns r's enable-relative monotonic timestamp (a real clock
// read; control-plane and watchdog use only).
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// stamp returns the timestamp to record on an event: the real clock when
// the recorder is precise, otherwise the coarse shared clock — one atomic
// load, the hot-path default.
func (r *Recorder) stamp() int64 {
	if r.precise {
		return r.now()
	}
	return r.clock.Load()
}

// RecordC records an event on consumer id's ring. Call only from the
// consumer goroutine that owns id (single-writer). Free when disarmed.
func RecordC(id int, kind Kind, a uint64, b, c int32) {
	if !Enabled() {
		return
	}
	r := rec.Load()
	if r == nil {
		return
	}
	if id < 0 || id >= len(r.consumers) {
		r.dropped.Add(1)
		return
	}
	r.consumers[id].record(r.stamp(), kind, a, b, c)
}

// RecordP records an event on producer id's ring. Call only from the
// producer goroutine that owns id. Free when disarmed.
func RecordP(id int, kind Kind, a uint64, b, c int32) {
	if !Enabled() {
		return
	}
	r := rec.Load()
	if r == nil {
		return
	}
	if id < 0 || id >= len(r.producers) {
		r.dropped.Add(1)
		return
	}
	r.producers[id].record(r.stamp(), kind, a, b, c)
}

// RecordControl records a membership event on the control ring. The
// control ring is multi-writer (recordShared): within one pool callers
// are serialized by the framework's membership lock, but several pools
// can share the process recorder (disjoint actor-id ranges via
// FlightBase), and their membership events interleave here. Free when
// disarmed.
func RecordControl(kind Kind, epoch uint64, b, c int32) {
	if !Enabled() {
		return
	}
	r := rec.Load()
	if r == nil {
		return
	}
	r.control.recordShared(r.stamp(), kind, epoch, b, c)
}

// BeginOp marks consumer id as inside a blocking retrieval; the watchdog
// flags a marker it has watched past its deadline with no ring progress
// as a stall. Call from the consumer goroutine. The marker is a fresh
// token, not a timestamp — no clock read; the watchdog supplies the
// clock by remembering when it first saw each token. Free when disarmed.
func BeginOp(id int) {
	if !Enabled() {
		return
	}
	r := rec.Load()
	if r == nil || id < 0 || id >= len(r.opMark) {
		return
	}
	r.opSeq[id]++
	r.opMark[id].Store(r.opSeq[id])
}

// EndOp clears consumer id's in-flight marker. Free when disarmed.
func EndOp(id int) {
	if !Enabled() {
		return
	}
	r := rec.Load()
	if r == nil || id < 0 || id >= len(r.opMark) {
		return
	}
	r.opMark[id].Store(0)
}

// NextChunkID returns a fresh chunk flight id. Chunk ids identify one
// *residence* of a chunk — recycling assigns a new id — so lifecycle
// reconstruction never aliases two generations of the same allocation.
// Called on the chunk-allocation path (once per chunk, not per task), where
// the counter's RMW is harmless. Constant 0 under salsa_noflight.
func NextChunkID() uint64 {
	if !Compiled {
		return 0
	}
	return chunkIDs.Add(1)
}

// Dropped returns the number of events discarded because their id exceeded
// the recorder's ring count (0 with no recorder installed).
func Dropped() int64 {
	if r := rec.Load(); r != nil {
		return r.dropped.Load()
	}
	return 0
}

// installed returns the current recorder, nil if none.
func installed() *Recorder { return rec.Load() }
