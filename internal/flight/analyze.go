package flight

import (
	"fmt"
	"sort"
	"strings"
)

// This file is salsa-doctor's brain, kept in the library so the chaos and
// DST failure paths can attach the same causal analysis to their error
// messages without shelling out to the binary.

// Timeline is every event of a dump merged into one global order: by
// monotonic timestamp, then ring (role, id), then ring-local sequence.
// Per-ring sequence numbers break timestamp ties from the same writer, so
// a single goroutine's events never reorder even at equal nanotimes (DST
// runs, where scheduling is serialized, produce many equal stamps).
type Timeline []Event

// Timeline merges the dump's rings.
func (d *Dump) Timeline() Timeline {
	var n int
	for _, rg := range d.Rings {
		n += len(rg.Events)
	}
	tl := make(Timeline, 0, n)
	for _, rg := range d.Rings {
		tl = append(tl, rg.Events...)
	}
	sort.SliceStable(tl, func(i, j int) bool {
		a, b := tl[i], tl[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Seq < b.Seq
	})
	return tl
}

// Take is one successful task take extracted from the timeline.
type Take struct {
	// Consumer is the taking consumer's id; Slot the chunk slot index.
	Consumer int
	Slot     int32
	// Via is the take's path: KTakeFast, KTakeSlow, KTakeSteal, or
	// KTakeBatch (one batched-run event expands to one Take per slot).
	Via Kind
	// TS is the event's timestamp.
	TS int64
}

// Lifecycle reconstructs one chunk residence (alloc → publish → steal
// chain → drain), keyed by the chunk's flight id. Recycling starts a new
// flight id, hence a new Lifecycle.
type Lifecycle struct {
	FID uint64
	// Publish is the KChunkPublish event, nil if it predates the ring.
	Publish *Event
	// Owners is the ownership chain: the publishing pool, then each
	// steal winner in timeline order.
	Owners []int
	// Steals are the KStealWin events, Rescues the KStealRescue events.
	Steals  []Event
	Rescues []Event
	// Takes are the successful takes, in timeline order.
	Takes []Take
	// Drained is the KChunkDrained event, nil if never observed.
	Drained *Event
}

// Anomaly is one suspicious pattern the analyzer found.
type Anomaly struct {
	// Kind is a stable machine-checkable tag: "double-take",
	// "orphaned-chunk", "steal-storm", "checkempty-livelock".
	Kind string `json:"kind"`
	// Summary is the one-line human description.
	Summary string `json:"summary"`
	// FID is the implicated chunk flight id (0 when not chunk-scoped).
	FID uint64 `json:"fid,omitempty"`
	// Slot is the implicated slot index (-1 when not slot-scoped).
	Slot int32 `json:"slot"`
	// Consumers are the implicated consumer ids, ascending.
	Consumers []int `json:"consumers,omitempty"`
	// Events are the implicating events, timeline order.
	Events []Event `json:"events,omitempty"`
}

// Report is the full analysis of one dump.
type Report struct {
	// Lifecycles holds one entry per chunk flight id seen, in first-seen
	// timeline order.
	Lifecycles []*Lifecycle
	// Anomalies, most severe kinds first (double-take, orphaned-chunk,
	// steal-storm, checkempty-livelock).
	Anomalies []Anomaly
	// KindCounts tallies events by kind across the whole dump.
	KindCounts map[Kind]int
	// Events is the merged timeline the report was computed from.
	Events Timeline
}

// successfulTake reports whether e commits a task take, and at which slot.
func successfulTake(e Event) (slot int32, ok bool) {
	switch e.Kind {
	case KTakeFast:
		return e.B, true
	case KTakeSlow, KTakeSteal:
		return e.B, e.C == 1
	}
	return 0, false
}

// stealStormWindow / stealStormCount: a steal storm is stealStormCount
// failed steals by one consumer within stealStormWindow ns with no
// successful steal or take between them.
const (
	stealStormWindow = int64(50_000_000) // 50ms
	stealStormCount  = 32
)

// livelockAbortCount: checkempty-livelock fires when a consumer logs this
// many KCheckEmptyAbort events with no successful take in between.
const livelockAbortCount = 64

// Analyze merges the dump and reconstructs lifecycles and anomalies.
func Analyze(d *Dump) *Report {
	tl := d.Timeline()
	r := &Report{KindCounts: map[Kind]int{}, Events: tl}
	byFID := map[uint64]*Lifecycle{}
	life := func(fid uint64) *Lifecycle {
		lc := byFID[fid]
		if lc == nil {
			lc = &Lifecycle{FID: fid}
			byFID[fid] = lc
			r.Lifecycles = append(r.Lifecycles, lc)
		}
		return lc
	}

	for i := range tl {
		e := tl[i]
		r.KindCounts[e.Kind]++
		switch e.Kind {
		case KChunkPublish:
			lc := life(e.A)
			lc.Publish = &tl[i]
		case KStealWin:
			lc := life(e.A)
			lc.Steals = append(lc.Steals, e)
		case KStealRescue:
			life(e.A).Rescues = append(life(e.A).Rescues, e)
		case KChunkDrained:
			lc := life(e.A)
			lc.Drained = &tl[i]
		case KTakeFast, KTakeSlow, KTakeSteal:
			if slot, ok := successfulTake(e); ok {
				life(e.A).Takes = append(life(e.A).Takes, Take{
					Consumer: e.ID, Slot: slot, Via: e.Kind, TS: e.TS,
				})
			}
		case KTakeBatch:
			lc := life(e.A)
			for s := int32(0); s < e.C; s++ {
				lc.Takes = append(lc.Takes, Take{
					Consumer: e.ID, Slot: e.B + s, Via: e.Kind, TS: e.TS,
				})
			}
		}
	}

	// The ownership chain is built from the events' roles, not their raw
	// timeline positions: the publishing pool always precedes the steal
	// winners, even when the coarse event clock lands the publish and the
	// first steal on the same stamp and the merge order between their two
	// rings is arbitrary.
	for _, lc := range r.Lifecycles {
		if lc.Publish != nil {
			lc.Owners = append(lc.Owners, int(lc.Publish.B))
		}
		for _, s := range lc.Steals {
			lc.Owners = append(lc.Owners, s.ID)
		}
	}

	r.Anomalies = append(r.Anomalies, findDoubleTakes(tl)...)
	var newest int64
	if len(tl) > 0 {
		newest = tl[len(tl)-1].TS
	}
	r.Anomalies = append(r.Anomalies, findOrphanedChunks(r.Lifecycles, d.TruncationHorizon(), newest)...)
	r.Anomalies = append(r.Anomalies, findStealStorms(tl)...)
	r.Anomalies = append(r.Anomalies, findCheckEmptyLivelock(tl)...)
	return r
}

// findDoubleTakes flags every (chunk flight id, slot) taken successfully
// more than once — the Lemma 12 (uniqueness) violation the two-CAS steal
// protocol exists to prevent.
func findDoubleTakes(tl Timeline) []Anomaly {
	type key struct {
		fid  uint64
		slot int32
	}
	takes := map[key][]Event{}
	var order []key
	add := func(e Event, slot int32) {
		k := key{e.A, slot}
		if len(takes[k]) == 0 {
			order = append(order, k)
		}
		takes[k] = append(takes[k], e)
	}
	for _, e := range tl {
		if e.A == 0 {
			continue
		}
		if e.Kind == KTakeBatch {
			// One batched-run event covers slots [B, B+C): each slot is a
			// committed take, so each participates in the uniqueness check.
			for s := int32(0); s < e.C; s++ {
				add(e, e.B+s)
			}
			continue
		}
		if slot, ok := successfulTake(e); ok {
			add(e, slot)
		}
	}
	var out []Anomaly
	for _, k := range order {
		ev := takes[k]
		if len(ev) < 2 {
			continue
		}
		cons := consumerSet(ev)
		var who []string
		for _, e := range ev {
			who = append(who, fmt.Sprintf("consumer %d via %s at t=%dns", e.ID, e.Kind, e.TS))
		}
		out = append(out, Anomaly{
			Kind: "double-take",
			Summary: fmt.Sprintf("chunk %d slot %d taken %d times: %s",
				k.fid, k.slot, len(ev), strings.Join(who, "; ")),
			FID:       k.fid,
			Slot:      k.slot,
			Consumers: cons,
			Events:    ev,
		})
	}
	return out
}

// orphanMinAge: a chunk younger than this at capture is presumed still in
// flight, not orphaned — a producer may be filling it or its consumer may
// simply not have reached it yet.
const orphanMinAge = int64(50_000_000) // 50ms

// findOrphanedChunks flags chunks that were published, never drained, and
// whose last observed owner produced no take after the chunk's last
// ownership change — tasks potentially stranded behind a departed owner.
//
// Chunks published before the truncation horizon are skipped: a wrapped
// ring has evicted its oldest events, so the absence of a take or drain
// for an old chunk proves nothing (the event may simply be gone). Only
// where the rings are complete is absence evidence.
func findOrphanedChunks(lcs []*Lifecycle, horizon, newest int64) []Anomaly {
	var out []Anomaly
	for _, lc := range lcs {
		if lc.Publish == nil || lc.Drained != nil {
			continue
		}
		if lc.Publish.TS < horizon || newest-lc.Publish.TS < orphanMinAge {
			continue
		}
		// Last ownership event (publish or last steal).
		lastOwnerTS := lc.Publish.TS
		if n := len(lc.Steals); n > 0 {
			lastOwnerTS = lc.Steals[n-1].TS
		}
		active := false
		for _, t := range lc.Takes {
			if t.TS >= lastOwnerTS {
				active = true
				break
			}
		}
		if active {
			continue
		}
		out = append(out, Anomaly{
			Kind: "orphaned-chunk",
			Summary: fmt.Sprintf("chunk %d published to pool %d, never drained, no takes after its last ownership change (owners %v)",
				lc.FID, lc.Owners[0], lc.Owners),
			FID:  lc.FID,
			Slot: -1,
		})
	}
	return out
}

// findStealStorms flags bursts of failed steals from one consumer with
// nothing gained in between — the signature of thieves chasing each other
// around a nearly-empty pool set.
func findStealStorms(tl Timeline) []Anomaly {
	type state struct {
		count   int
		firstTS int64
		events  []Event
	}
	st := map[int]*state{}
	var out []Anomaly
	flush := func(id int, s *state) {
		if s.count >= stealStormCount {
			out = append(out, Anomaly{
				Kind: "steal-storm",
				Summary: fmt.Sprintf("consumer %d: %d failed steals in %.1fms with no take or steal win",
					id, s.count, float64(s.events[len(s.events)-1].TS-s.firstTS)/1e6),
				Slot:      -1,
				Consumers: []int{id},
				Events:    s.events,
			})
		}
		*s = state{}
	}
	for _, e := range tl {
		if e.Role != RoleConsumer {
			continue
		}
		s := st[e.ID]
		if s == nil {
			s = &state{}
			st[e.ID] = s
		}
		switch e.Kind {
		case KStealFail:
			if s.count == 0 {
				s.firstTS = e.TS
			} else if e.TS-s.firstTS > stealStormWindow {
				flush(e.ID, s)
				s.firstTS = e.TS
			}
			s.count++
			s.events = append(s.events, e)
		case KStealWin, KTakeFast, KTakeSlow, KTakeSteal, KTakeBatch:
			flush(e.ID, s)
		}
	}
	for id, s := range st {
		flush(id, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Consumers[0] < out[j].Consumers[0] })
	return out
}

// findCheckEmptyLivelock flags consumers whose emptiness probes keep
// aborting (indicator resets / epoch moves) without the consumer ever
// taking a task — the livelock signature of a perpetually disturbed probe.
func findCheckEmptyLivelock(tl Timeline) []Anomaly {
	aborts := map[int]int{}
	evs := map[int][]Event{}
	var out []Anomaly
	for _, e := range tl {
		if e.Role != RoleConsumer {
			continue
		}
		switch e.Kind {
		case KCheckEmptyAbort:
			aborts[e.ID]++
			evs[e.ID] = append(evs[e.ID], e)
		case KTakeFast, KTakeSlow, KTakeSteal, KTakeBatch, KGetEmpty:
			_, took := successfulTake(e)
			if took || e.Kind == KTakeBatch || e.Kind == KGetEmpty {
				aborts[e.ID] = 0
				evs[e.ID] = nil
			}
		}
	}
	var ids []int
	for id, n := range aborts {
		if n >= livelockAbortCount {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, Anomaly{
			Kind: "checkempty-livelock",
			Summary: fmt.Sprintf("consumer %d: %d consecutive checkEmpty aborts with no take and no confirmed empty",
				id, aborts[id]),
			Slot:      -1,
			Consumers: []int{id},
			Events:    evs[id],
		})
	}
	return out
}

// DoubleTakes returns just the double-take anomalies.
func (r *Report) DoubleTakes() []Anomaly {
	var out []Anomaly
	for _, a := range r.Anomalies {
		if a.Kind == "double-take" {
			out = append(out, a)
		}
	}
	return out
}

// consumerSet returns the distinct consumer ids of events, ascending.
func consumerSet(evs []Event) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range evs {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e.ID)
		}
	}
	sort.Ints(out)
	return out
}

// FormatEvent renders one event as a single line.
func FormatEvent(e Event) string {
	who := fmt.Sprintf("%s %d", e.Role, e.ID)
	if e.Role == RoleControl {
		who = "control"
	}
	detail := ""
	switch e.Kind {
	case KChunkPublish:
		detail = fmt.Sprintf("chunk=%d pool=%d node=%d", e.A, e.B, e.C)
	case KForceExpand, KProduceFail:
		detail = fmt.Sprintf("pool=%d", e.B)
	case KTakeFast:
		detail = fmt.Sprintf("chunk=%d slot=%d", e.A, e.B)
	case KTakeSlow, KTakeSteal:
		won := "lost"
		if e.C == 1 {
			won = "won"
		}
		detail = fmt.Sprintf("chunk=%d slot=%d %s", e.A, e.B, won)
	case KTakeBatch:
		detail = fmt.Sprintf("chunk=%d slots=[%d,%d)", e.A, e.B, e.B+e.C)
	case KStealWin:
		detail = fmt.Sprintf("chunk=%d victim=%d nodes=%d->%d", e.A, e.B, e.C>>16, e.C&0xffff)
	case KStealFail:
		detail = fmt.Sprintf("chunk=%d victim=%d", e.A, e.B)
	case KStealRescue:
		detail = fmt.Sprintf("chunk=%d dead-owner=%d idx=%d", e.A, e.B, e.C)
	case KRescueRescan:
		detail = fmt.Sprintf("chunk=%d dead-owner=%d advanced-to=%d", e.A, e.B, e.C)
	case KChunkDrained:
		detail = fmt.Sprintf("chunk=%d", e.A)
	case KCheckEmptyAbort:
		detail = fmt.Sprintf("round=%d", e.C)
	case KMemberJoin, KMemberRetire, KMemberCrash:
		detail = fmt.Sprintf("epoch=%d consumer=%d node=%d", e.A, e.B, e.C)
	}
	if detail != "" {
		detail = " " + detail
	}
	return fmt.Sprintf("t=%-12d %-11s #%-5d %-16s%s", e.TS, who, e.Seq, e.Kind, detail)
}

// Excerpt renders the last n events of the dump's merged timeline, one
// line each — the snippet the chaos and DST checkers attach to failures.
func Excerpt(d *Dump, n int) string {
	tl := d.Timeline()
	if len(tl) == 0 {
		return "(no events recorded)"
	}
	start := 0
	if len(tl) > n {
		start = len(tl) - n
	}
	var b strings.Builder
	if start > 0 {
		fmt.Fprintf(&b, "... (%d earlier events)\n", start)
	}
	for _, e := range tl[start:] {
		b.WriteString(FormatEvent(e))
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// Summarize renders the report's headline: event totals, lifecycle counts
// and each anomaly on one line.
func (r *Report) Summarize() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d across %d kinds; chunk lifecycles: %d\n",
		len(r.Events), len(r.KindCounts), len(r.Lifecycles))
	var kinds []Kind
	for k := range r.KindCounts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-16s %d\n", k, r.KindCounts[k])
	}
	if len(r.Anomalies) == 0 {
		b.WriteString("anomalies: none\n")
	} else {
		fmt.Fprintf(&b, "anomalies: %d\n", len(r.Anomalies))
		for _, a := range r.Anomalies {
			fmt.Fprintf(&b, "  [%s] %s\n", a.Kind, a.Summary)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
