//go:build !salsa_noflight

package flight

// Compiled reports whether flight-recorder sites are compiled into this
// build. Default builds keep them live (one atomic load per site when
// disarmed) so any harness can arm the black box; build with
// -tags salsa_noflight to turn every site into dead code.
const Compiled = true
