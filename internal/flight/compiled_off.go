//go:build salsa_noflight

package flight

// Compiled is false under the salsa_noflight tag: every Record*/BeginOp
// site reduces to a constant-false branch the compiler deletes, so hot
// paths carry no atomics and no calls from the recording layer.
const Compiled = false
