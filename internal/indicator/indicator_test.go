package indicator

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetCheckClear(t *testing.T) {
	in := New(5)
	for id := 0; id < 5; id++ {
		if in.Check(id) {
			t.Fatalf("bit %d set on a fresh indicator", id)
		}
	}
	in.Set(2)
	if !in.Check(2) {
		t.Fatal("bit 2 lost")
	}
	if in.Check(1) || in.Check(3) {
		t.Fatal("neighbouring bits leaked")
	}
	in.Clear()
	if in.Check(2) {
		t.Fatal("Clear left bit 2 set")
	}
}

func TestMultiWord(t *testing.T) {
	const n = 200 // spans four words
	in := New(n)
	if in.Size() != n {
		t.Fatalf("Size = %d, want %d", in.Size(), n)
	}
	for id := 0; id < n; id += 7 {
		in.Set(id)
	}
	for id := 0; id < n; id++ {
		want := id%7 == 0
		if in.Check(id) != want {
			t.Fatalf("bit %d = %v, want %v", id, in.Check(id), want)
		}
	}
	in.Clear()
	for id := 0; id < n; id++ {
		if in.Check(id) {
			t.Fatalf("bit %d survived Clear", id)
		}
	}
}

func TestWordBoundaries(t *testing.T) {
	in := New(129)
	for _, id := range []int{0, 63, 64, 127, 128} {
		in.Set(id)
		if !in.Check(id) {
			t.Fatalf("boundary bit %d lost", id)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	in := New(4)
	for _, id := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", id)
				}
			}()
			in.Set(id)
		}()
	}
}

// TestConcurrentSetClear exercises the protocol pattern: setters racing a
// clearer must never corrupt other bits, and a bit set after the last Clear
// must be visible.
func TestConcurrentSetClear(t *testing.T) {
	in := New(64)
	var wg sync.WaitGroup
	for id := 0; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				in.Set(id)
				_ = in.Check(id)
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10000; i++ {
			in.Clear()
		}
	}()
	wg.Wait()
	// Quiescent: set bits must stick.
	in.Clear()
	in.Set(7)
	if !in.Check(7) {
		t.Fatal("bit 7 lost after quiescence")
	}
	for id := 0; id < 64; id++ {
		if id != 7 && in.Check(id) {
			t.Fatalf("stray bit %d", id)
		}
	}
}

// TestQuickSetIsolation property: setting any subset of bits yields exactly
// that subset.
func TestQuickSetIsolation(t *testing.T) {
	f := func(ids []uint8) bool {
		in := New(256)
		want := map[int]bool{}
		for _, id := range ids {
			in.Set(int(id))
			want[int(id)] = true
		}
		for id := 0; id < 256; id++ {
			if in.Check(id) != want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}
