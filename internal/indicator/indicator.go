// Package indicator implements the per-pool empty-indicator of the SALSA
// checkEmpty protocol (paper §1.5.5, Algorithm 6).
//
// Each pool carries a bit array with one bit per consumer. A consumer
// probing for global emptiness sets its bit in every pool, then re-traverses
// all pools n times verifying both that no tasks are visible and that its
// bit was never cleared. Any operation that may have emptied a pool — taking
// the last task of a chunk, taking a task whose successor slot is still ⊥,
// or stealing a chunk — clears the whole indicator of that pool. Because at
// most n−1 task-taking operations can be pending when the probe starts, n
// clean traversals guarantee one traversal during which the system really
// was empty, making the ⊥ return linearizable (Claim 3 of the paper).
//
// Under elastic membership, indicators are sized for the pool's lifetime
// consumer capacity (MaxConsumers) so consumers that join later have their
// bit from the start, and the indicator of an abandoned (retired/crashed)
// pool stays in every probe's scan set forever — the "permanently raised"
// slot rule. In-flight produces and forced puts can land tasks in an
// abandoned pool after its owner departs, so dropping it from the scan
// would let checkEmpty linearize an emptiness a reclaimable task refutes;
// see internal/framework/membership.go.
package indicator

import "sync/atomic"

const bitsPerWord = 64

// padWord is one indicator word on its own cache line. The indicator sits
// on the pool's hottest write paths — every possibly-emptying take Clears
// it, every emptiness probe Sets bits in it — and with multiple words (>64
// consumers) the probing consumers of different word ranges must not
// false-share; with one word, the padding still keeps the bit array off
// the cache line of the surrounding allocation.
type padWord struct {
	w atomic.Uint64
	_ [56]byte
}

// Indicator is an atomic bit array with one bit per consumer. All methods
// are safe for concurrent use.
type Indicator struct {
	words []padWord
	n     int
}

// New returns an indicator able to track n consumers (ids 0..n-1).
func New(n int) *Indicator {
	if n < 0 {
		panic("indicator: negative consumer count")
	}
	return &Indicator{
		words: make([]padWord, (n+bitsPerWord-1)/bitsPerWord),
		n:     n,
	}
}

// Set records that consumer id has observed this pool during an emptiness
// probe. It is the setIndicator operation of Algorithm 1.
func (in *Indicator) Set(id int) {
	in.check(id)
	in.words[id/bitsPerWord].w.Or(1 << (uint(id) % bitsPerWord))
}

// Check reports whether consumer id's bit is still set — i.e. that no
// possibly-emptying operation has run since the bit was set. It is the
// checkIndicator operation of Algorithm 1.
func (in *Indicator) Check(id int) bool {
	in.check(id)
	return in.words[id/bitsPerWord].w.Load()&(1<<(uint(id)%bitsPerWord)) != 0
}

// Clear resets every consumer's bit. Called by operations that may have made
// the pool empty (Algorithm 6's clearIndicator). Multi-word clears are not
// atomic as a whole; the protocol only requires that each probing consumer's
// bit is cleared at some point during the emptying operation, which
// per-word atomic stores provide.
func (in *Indicator) Clear() {
	for i := range in.words {
		in.words[i].w.Store(0)
	}
}

// Size returns the number of consumers the indicator tracks.
func (in *Indicator) Size() int { return in.n }

func (in *Indicator) check(id int) {
	if id < 0 || id >= in.n {
		panic("indicator: consumer id out of range")
	}
}
