// Package edpool implements an elimination-diffraction pool in the style
// of Afek, Korland, Natanzon and Shavit (Euro-Par 2010) — the ED-pool the
// paper's related work discusses (§1.2): a tree of queues fed through
// diffracting balancers with elimination arrays.
//
// Structure: a complete binary tree of *balancers* routes every operation
// to one of 2^depth leaf FIFO queues. Each balancer carries
//
//   - a toggle bit: operations alternate left/right, spreading load evenly
//     across the subtrees (the "diffraction"), and
//   - an elimination array: a put descending through the balancer parks
//     briefly in a slot; a get arriving at the same slot takes the task
//     directly and both operations complete without ever touching a queue.
//
// Elimination pairs a put with a get, which is always legal for an
// unordered pool (unlike for a FIFO queue, where the paper notes
// elimination only works near-empty). The pool therefore scales better
// than a single queue, but — as the paper's citations [6] observe — the
// shared balancer counters and elimination arrays still bounce between
// chips, which is why it loses to partitioned designs like SALSA on NUMA
// machines. This package exists to make that comparison runnable.
package edpool

import (
	"fmt"
	"sync/atomic"

	"salsa/internal/indicator"
	"salsa/internal/msqueue"
	"salsa/internal/scpool"
	"salsa/internal/telemetry"
)

// DefaultDepth gives 4 leaf queues.
const DefaultDepth = 2

const (
	elimSlots = 4  // elimination array width per balancer
	elimSpins = 48 // how long a put parks waiting for a get
)

// elimSlot holds a parked put's task. nil = free.
type elimSlot[T any] struct {
	p atomic.Pointer[T]
	_ [48]byte // avoid false sharing between slots
}

// balancer is one diffracting node of the tree.
type balancer[T any] struct {
	toggle atomic.Uint64
	elim   []elimSlot[T]
}

// next returns 0 (left) or 1 (right), alternating per operation.
func (b *balancer[T]) next() int {
	return int(b.toggle.Add(1) & 1)
}

// Options configures a pool.
type Options struct {
	// Depth of the diffraction tree; 2^Depth leaf queues. Default 2.
	Depth int
	// Consumers sizes the empty-indicator for the checkEmpty protocol.
	Consumers int
}

// Pool is the shared elimination-diffraction pool.
type Pool[T any] struct {
	opts      Options
	balancers []*balancer[T] // heap layout: node i's children are 2i+1, 2i+2
	leaves    []*msqueue.Queue[*T]
	ind       *indicator.Indicator
}

// New builds the pool.
func New[T any](opts Options) (*Pool[T], error) {
	if opts.Depth <= 0 {
		opts.Depth = DefaultDepth
	}
	if opts.Depth > 8 {
		return nil, fmt.Errorf("edpool: depth %d unreasonable (max 8)", opts.Depth)
	}
	if opts.Consumers <= 0 {
		return nil, fmt.Errorf("edpool: Consumers must be positive")
	}
	numBalancers := 1<<opts.Depth - 1
	numLeaves := 1 << opts.Depth
	p := &Pool[T]{
		opts:      opts,
		balancers: make([]*balancer[T], numBalancers),
		leaves:    make([]*msqueue.Queue[*T], numLeaves),
		ind:       indicator.New(opts.Consumers),
	}
	for i := range p.balancers {
		p.balancers[i] = &balancer[T]{elim: make([]elimSlot[T], elimSlots)}
	}
	for i := range p.leaves {
		p.leaves[i] = msqueue.New[*T]()
	}
	return p, nil
}

// Leaves returns the number of leaf queues (for tests and stats).
func (p *Pool[T]) Leaves() int { return len(p.leaves) }

// Put inserts t, trying elimination at every balancer on the way down.
func (p *Pool[T]) Put(ps *scpool.ProducerState, t *T) {
	if t == nil {
		panic("edpool: nil task")
	}
	node := 0
	slotSeed := uint64(ps.ID)*0x9E3779B97F4A7C15 + 1
	for {
		b := p.balancers[node]
		// Elimination attempt: park in a pseudo-random slot.
		slotSeed ^= slotSeed << 13
		slotSeed ^= slotSeed >> 7
		slotSeed ^= slotSeed << 17
		slot := &b.elim[slotSeed%elimSlots]
		ps.Ops.CAS.Inc()
		if slot.p.CompareAndSwap(nil, t) {
			for spin := 0; spin < elimSpins; spin++ {
				if slot.p.Load() != t {
					return // a get took it: eliminated
				}
			}
			ps.Ops.CAS.Inc()
			if !slot.p.CompareAndSwap(t, nil) {
				return // taken at the last moment
			}
		} else {
			ps.Ops.FailedCAS.Inc()
		}
		// Diffract.
		child := 2*node + 1 + b.next()
		if child >= len(p.balancers) {
			leaf := child - len(p.balancers)
			ps.Ops.CAS.Add(2) // MS enqueue
			p.leaves[leaf].Enqueue(t)
			ps.Ops.Puts.Inc()
			return
		}
		node = child
	}
}

// Get retrieves a task, or nil when the sweep found none. It first tries
// to eliminate against parked puts on the way down, then dequeues from the
// leaf the tree routed it to, then sweeps the remaining leaves.
func (p *Pool[T]) Get(cs *scpool.ConsumerState) *T {
	node := 0
	for {
		b := p.balancers[node]
		// Elimination attempt: grab any parked put.
		for i := range b.elim {
			t := b.elim[i].p.Load()
			if t == nil {
				continue
			}
			cs.Ops.CAS.Inc()
			if b.elim[i].p.CompareAndSwap(t, nil) {
				p.ind.Clear()
				return t
			}
			cs.Ops.FailedCAS.Inc()
		}
		child := 2*node + 1 + b.next()
		if child >= len(p.balancers) {
			leaf := child - len(p.balancers)
			n := len(p.leaves)
			for k := 0; k < n; k++ {
				cs.Ops.CAS.Inc()
				if t, ok := p.leaves[(leaf+k)%n].Dequeue(); ok {
					p.ind.Clear()
					// A dequeue from a leaf other than the one the
					// tree routed us to is an unattributed steal:
					// the pool is one shared structure with no
					// victim consumer to charge.
					if k > 0 {
						if tr := cs.Tracer; tr != nil {
							tr.OnSteal(telemetry.StealEvent{
								Thief: cs.ID, Victim: telemetry.UnattributedVictim,
								ThiefNode: cs.Node, VictimNode: telemetry.UnattributedVictim,
								TasksMoved: 1,
							})
						}
					}
					return t
				}
			}
			return nil
		}
		node = child
	}
}

// IsEmpty reports whether a sweep of all leaves and elimination arrays
// found no task.
func (p *Pool[T]) IsEmpty() bool {
	for _, b := range p.balancers {
		for i := range b.elim {
			if b.elim[i].p.Load() != nil {
				return false
			}
		}
	}
	for _, q := range p.leaves {
		if !q.IsEmpty() {
			return false
		}
	}
	return true
}

// Facade adapts the shared pool to the SCPool interface so the
// work-stealing framework (and every benchmark figure) can drive it like
// the other global-structure baseline, ConcBag.
type Facade[T any] struct {
	pool     *Pool[T]
	ownerIDv int
}

// NewFacade returns consumer ownerID's view of the pool.
func (p *Pool[T]) NewFacade(ownerID int) (*Facade[T], error) {
	if ownerID < 0 || ownerID >= p.opts.Consumers {
		return nil, fmt.Errorf("edpool: owner id %d out of range", ownerID)
	}
	return &Facade[T]{pool: p, ownerIDv: ownerID}, nil
}

// OwnerID implements scpool.SCPool.
func (f *Facade[T]) OwnerID() int { return f.ownerIDv }

// Produce inserts into the shared pool; it is unbounded and never fails.
func (f *Facade[T]) Produce(ps *scpool.ProducerState, t *T) bool {
	f.pool.Put(ps, t)
	return true
}

// ProduceForce is identical to Produce.
func (f *Facade[T]) ProduceForce(ps *scpool.ProducerState, t *T) {
	ps.Ops.ForcePuts.Inc()
	f.pool.Put(ps, t)
}

// Consume takes from the shared pool.
func (f *Facade[T]) Consume(cs *scpool.ConsumerState) *T {
	t := f.pool.Get(cs)
	if t != nil {
		cs.Ops.SlowPath.Inc()
	}
	return t
}

// Steal is a no-op: Consume already covers the whole shared structure.
func (f *Facade[T]) Steal(cs *scpool.ConsumerState, _ scpool.SCPool[T]) *T {
	return nil
}

// IsEmpty delegates to the shared pool.
func (f *Facade[T]) IsEmpty() bool { return f.pool.IsEmpty() }

// SetIndicator delegates to the pool-wide indicator.
func (f *Facade[T]) SetIndicator(id int) { f.pool.ind.Set(id) }

// CheckIndicator delegates to the pool-wide indicator.
func (f *Facade[T]) CheckIndicator(id int) bool { return f.pool.ind.Check(id) }
