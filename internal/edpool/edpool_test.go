package edpool

import (
	"sync"
	"testing"

	"salsa/internal/scpool"
)

type task struct{ id int }

func prod(id int) *scpool.ProducerState { return &scpool.ProducerState{ID: id} }
func cons(id int) *scpool.ConsumerState { return &scpool.ConsumerState{ID: id} }

func newPool(t *testing.T, depth, consumers int) *Pool[task] {
	t.Helper()
	p, err := New[task](Options{Depth: depth, Consumers: consumers})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPutGetBasic(t *testing.T) {
	p := newPool(t, 2, 1)
	if p.Leaves() != 4 {
		t.Fatalf("Leaves = %d, want 4", p.Leaves())
	}
	ps, cs := prod(0), cons(0)
	if got := p.Get(cs); got != nil {
		t.Fatalf("empty pool yielded %v", got)
	}
	const n = 100
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		p.Put(ps, &task{id: i})
	}
	if p.IsEmpty() {
		t.Fatal("pool with tasks reports empty")
	}
	for i := 0; i < n; i++ {
		got := p.Get(cs)
		if got == nil {
			t.Fatalf("Get %d found nothing", i)
		}
		if seen[got.id] {
			t.Fatalf("task %d twice", got.id)
		}
		seen[got.id] = true
	}
	if got := p.Get(cs); got != nil {
		t.Fatalf("drained pool yielded %v", got)
	}
	if !p.IsEmpty() {
		t.Fatal("drained pool not empty")
	}
}

func TestDiffractionSpreadsLeaves(t *testing.T) {
	p := newPool(t, 2, 1)
	ps := prod(0)
	for i := 0; i < 64; i++ {
		p.Put(ps, &task{id: i})
	}
	nonEmpty := 0
	for _, q := range p.leaves {
		if !q.IsEmpty() {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("diffraction used only %d of %d leaves", nonEmpty, len(p.leaves))
	}
}

func TestEliminationPairsPutWithGet(t *testing.T) {
	p := newPool(t, 1, 1)
	cs := cons(0)
	// Park a task directly in the root balancer's elimination array and
	// verify a Get takes it without touching any leaf.
	tk := &task{id: 9}
	p.balancers[0].elim[2].p.Store(tk)
	got := p.Get(cs)
	if got != tk {
		t.Fatalf("Get = %v, want the parked task", got)
	}
	for _, q := range p.leaves {
		if !q.IsEmpty() {
			t.Fatal("elimination should not touch leaves")
		}
	}
}

func TestIsEmptySeesParkedPuts(t *testing.T) {
	p := newPool(t, 1, 1)
	p.balancers[0].elim[0].p.Store(&task{id: 1})
	if p.IsEmpty() {
		t.Fatal("pool with a parked put reports empty")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New[task](Options{Depth: 9, Consumers: 1}); err == nil {
		t.Error("absurd depth accepted")
	}
	if _, err := New[task](Options{Consumers: 0}); err == nil {
		t.Error("Consumers=0 accepted")
	}
	p := newPool(t, 1, 2)
	if _, err := p.NewFacade(5); err == nil {
		t.Error("out-of-range facade owner accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("nil task accepted")
		}
	}()
	p.Put(prod(0), nil)
}

func TestFacadeConformance(t *testing.T) {
	p := newPool(t, 2, 2)
	f0, err := p.NewFacade(0)
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := p.NewFacade(1)
	ps := prod(0)
	if !f0.Produce(ps, &task{id: 1}) {
		t.Fatal("unbounded Produce failed")
	}
	if f1.Steal(cons(1), f0) != nil {
		t.Fatal("Steal must be a no-op")
	}
	if got := f1.Consume(cons(1)); got == nil || got.id != 1 {
		t.Fatalf("Consume through facade = %v", got)
	}
	if !f0.IsEmpty() {
		t.Fatal("facade IsEmpty wrong")
	}
	f0.SetIndicator(1)
	if !f0.CheckIndicator(1) {
		t.Fatal("indicator lost")
	}
	f1.ProduceForce(ps, &task{id: 2})
	if f1.Consume(cons(0)) == nil {
		t.Fatal("ProduceForce task lost")
	}
	if f0.CheckIndicator(1) {
		t.Fatal("indicator must clear on take")
	}
}

func TestConcurrentConservation(t *testing.T) {
	p := newPool(t, 3, 4)
	const (
		producers = 3
		consumers = 4
		perProd   = 8000
	)
	var pwg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		pwg.Add(1)
		go func(pi int) {
			defer pwg.Done()
			ps := prod(pi)
			for i := 0; i < perProd; i++ {
				p.Put(ps, &task{id: pi*perProd + i})
			}
		}(pi)
	}
	results := make([][]*task, consumers)
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	for ci := 0; ci < consumers; ci++ {
		cwg.Add(1)
		go func(ci int) {
			defer cwg.Done()
			cs := cons(ci)
			for {
				if tk := p.Get(cs); tk != nil {
					results[ci] = append(results[ci], tk)
					continue
				}
				select {
				case <-stop:
					for {
						tk := p.Get(cs)
						if tk == nil {
							return
						}
						results[ci] = append(results[ci], tk)
					}
				default:
				}
			}
		}(ci)
	}
	pwg.Wait()
	close(stop)
	cwg.Wait()

	seen := map[int]bool{}
	for _, res := range results {
		for _, tk := range res {
			if seen[tk.id] {
				t.Fatalf("task %d twice", tk.id)
			}
			seen[tk.id] = true
		}
	}
	if len(seen) != producers*perProd {
		t.Fatalf("got %d unique, want %d", len(seen), producers*perProd)
	}
}
