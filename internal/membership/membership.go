// Package membership tracks the consumer lifecycle of an elastic pool: the
// bookkeeping half of runtime consumer join/retire/crash-recovery.
//
// The SALSA paper fixes the consumer set at construction time, but nothing
// in its chunk-ownership mechanism requires that: a departed consumer's
// chunks are reclaimable through the ordinary two-CAS steal path, so
// membership can change while the pool serves traffic. This package owns
// the control-plane state of that elasticity — which consumer ids exist,
// which are live, and a monotonically increasing epoch stamped on every
// change — while the data-plane consequences (access-list rebuilds, pool
// abandonment, chunk reclamation) live in internal/framework and the
// SCPool implementations.
//
// Rules enforced here:
//
//   - Ids are dense and monotonic: the initial consumers are 0..n-1, every
//     Add returns the next id, and a retired id is never reused. Reuse
//     would let a new consumer's pool alias an abandoned pool that still
//     holds chunks (same owner id in the chunk ownership words), so the id
//     space only grows, up to a fixed capacity chosen at construction.
//   - At least one consumer stays live: retiring or killing the last live
//     consumer fails. A pool with zero consumers could never drain, and
//     producers would have no insertion target.
//   - Transitions are Live → Retired (graceful) or Live → Crashed
//     (fault-injection); both are terminal.
//
// The Registry serializes transitions with a mutex — membership changes
// are control-plane rare — but reads used on data paths (Epoch) are plain
// atomics so pool operations never block on a membership change in flight.
package membership

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is a consumer's lifecycle state.
type State int

const (
	// Unregistered marks an id that has not been allocated yet.
	Unregistered State = iota
	// Live is a consumer currently participating in the pool.
	Live
	// Retired is a consumer that left gracefully: its goroutine stopped
	// driving the handle before the transition, so its hazard record was
	// released and only its pool contents need reclaiming.
	Retired
	// Crashed is a consumer declared dead without its cooperation: its
	// handle state (hazard record included) is abandoned in place and its
	// pool contents are reclaimed by the survivors.
	Crashed
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Unregistered:
		return "unregistered"
	case Live:
		return "live"
	case Retired:
		return "retired"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Departed reports whether the state is terminal (Retired or Crashed).
func (s State) Departed() bool { return s == Retired || s == Crashed }

// Registry is the membership control plane: consumer states, the epoch
// counter, and id allocation. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	states   []State // by consumer id; len(states) == registered count
	live     int
	capacity int
	epoch    atomic.Uint64
}

// NewRegistry creates a registry with `initial` live consumers (ids
// 0..initial-1) and room for ids up to capacity-1. capacity < initial is an
// error; capacity == initial permits retirement but no growth.
func NewRegistry(initial, capacity int) (*Registry, error) {
	if initial <= 0 {
		return nil, fmt.Errorf("membership: need at least one initial consumer, got %d", initial)
	}
	if capacity < initial {
		return nil, fmt.Errorf("membership: capacity %d below initial consumer count %d",
			capacity, initial)
	}
	r := &Registry{
		states:   make([]State, initial, capacity),
		live:     initial,
		capacity: capacity,
	}
	for i := range r.states {
		r.states[i] = Live
	}
	return r, nil
}

// Epoch returns the current membership epoch: 0 at construction,
// incremented by every successful Add, Retire and Kill. Lock-free; data
// paths may poll it.
func (r *Registry) Epoch() uint64 { return r.epoch.Load() }

// Capacity returns the maximum number of consumer ids the registry can
// ever allocate (initial + adds; retired ids are not reused).
func (r *Registry) Capacity() int { return r.capacity }

// Registered returns the number of ids allocated so far (live + departed).
func (r *Registry) Registered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.states)
}

// LiveCount returns the number of live consumers.
func (r *Registry) LiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live
}

// State returns the state of id (Unregistered when out of range).
func (r *Registry) State(id int) State {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.states) {
		return Unregistered
	}
	return r.states[id]
}

// Live returns the live consumer ids in ascending order.
func (r *Registry) Live() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, r.live)
	for id, s := range r.states {
		if s == Live {
			out = append(out, id)
		}
	}
	return out
}

// Add allocates the next consumer id as Live and bumps the epoch. Fails
// when the id space is exhausted (capacity reached; retired ids are never
// reused — see the package comment).
func (r *Registry) Add() (id int, epoch uint64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.states) >= r.capacity {
		return 0, 0, fmt.Errorf(
			"membership: id space exhausted (%d ids allocated, capacity %d; retired ids are not reused)",
			len(r.states), r.capacity)
	}
	id = len(r.states)
	r.states = append(r.states, Live)
	r.live++
	return id, r.epoch.Add(1), nil
}

// Retire marks id Retired and bumps the epoch. Fails when id is not live
// or is the last live consumer.
func (r *Registry) Retire(id int) (epoch uint64, err error) {
	return r.depart(id, Retired)
}

// Kill marks id Crashed and bumps the epoch. Same validation as Retire.
func (r *Registry) Kill(id int) (epoch uint64, err error) {
	return r.depart(id, Crashed)
}

func (r *Registry) depart(id int, to State) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.states) {
		return 0, fmt.Errorf("membership: consumer %d not registered", id)
	}
	if s := r.states[id]; s != Live {
		return 0, fmt.Errorf("membership: consumer %d is %s, not live", id, s)
	}
	if r.live == 1 {
		return 0, fmt.Errorf("membership: consumer %d is the last live consumer", id)
	}
	r.states[id] = to
	r.live--
	return r.epoch.Add(1), nil
}

// Snapshot returns a copy of all states by id (index == consumer id).
func (r *Registry) Snapshot() []State {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]State, len(r.states))
	copy(out, r.states)
	return out
}
