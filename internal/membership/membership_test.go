package membership

import (
	"sync"
	"testing"
)

func TestNewRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(0, 4); err == nil {
		t.Fatal("want error for zero initial consumers")
	}
	if _, err := NewRegistry(-1, 4); err == nil {
		t.Fatal("want error for negative initial consumers")
	}
	if _, err := NewRegistry(4, 3); err == nil {
		t.Fatal("want error for capacity below initial")
	}
	r, err := NewRegistry(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 0 {
		t.Fatalf("fresh registry epoch = %d, want 0", r.Epoch())
	}
	if r.LiveCount() != 4 || r.Registered() != 4 || r.Capacity() != 4 {
		t.Fatalf("counts = %d/%d/%d, want 4/4/4", r.LiveCount(), r.Registered(), r.Capacity())
	}
}

func TestAddAllocatesMonotonicIDs(t *testing.T) {
	r, _ := NewRegistry(2, 5)
	for want := 2; want < 5; want++ {
		id, epoch, err := r.Add()
		if err != nil {
			t.Fatal(err)
		}
		if id != want {
			t.Fatalf("Add returned id %d, want %d", id, want)
		}
		if epoch != uint64(want-1) {
			t.Fatalf("Add epoch = %d, want %d", epoch, want-1)
		}
	}
	if _, _, err := r.Add(); err == nil {
		t.Fatal("want capacity error")
	}
}

func TestRetiredIDsNeverReused(t *testing.T) {
	r, _ := NewRegistry(2, 4)
	if _, err := r.Retire(0); err != nil {
		t.Fatal(err)
	}
	id, _, err := r.Add()
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("Add after retire returned id %d, want a fresh id 2", id)
	}
	if got := r.State(0); got != Retired {
		t.Fatalf("state(0) = %v, want Retired", got)
	}
}

func TestRetireValidation(t *testing.T) {
	r, _ := NewRegistry(2, 4)
	if _, err := r.Retire(7); err == nil {
		t.Fatal("want error retiring unregistered id")
	}
	if _, err := r.Retire(-1); err == nil {
		t.Fatal("want error retiring negative id")
	}
	if _, err := r.Retire(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Retire(1); err == nil {
		t.Fatal("want error on double retire")
	}
	if _, err := r.Kill(1); err == nil {
		t.Fatal("want error killing a retired consumer")
	}
	if _, err := r.Retire(0); err == nil {
		t.Fatal("want error retiring the last live consumer")
	}
	if got := r.LiveCount(); got != 1 {
		t.Fatalf("live = %d, want 1", got)
	}
}

func TestKillMarksCrashed(t *testing.T) {
	r, _ := NewRegistry(3, 3)
	if _, err := r.Kill(1); err != nil {
		t.Fatal(err)
	}
	if got := r.State(1); got != Crashed {
		t.Fatalf("state(1) = %v, want Crashed", got)
	}
	if !Crashed.Departed() || !Retired.Departed() || Live.Departed() {
		t.Fatal("Departed predicate wrong")
	}
	want := []State{Live, Crashed, Live}
	got := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEpochAdvancesPerChange(t *testing.T) {
	r, _ := NewRegistry(2, 8)
	var want uint64
	if _, e, _ := r.Add(); e != want+1 {
		t.Fatalf("epoch after add = %d, want %d", e, want+1)
	}
	want++
	if e, _ := r.Retire(0); e != want+1 {
		t.Fatalf("epoch after retire = %d, want %d", e, want+1)
	}
	want++
	if e, _ := r.Kill(1); e != want+1 {
		t.Fatalf("epoch after kill = %d, want %d", e, want+1)
	}
	want++
	if r.Epoch() != want {
		t.Fatalf("Epoch() = %d, want %d", r.Epoch(), want)
	}
	// Failed transitions must not advance the epoch.
	if _, err := r.Retire(0); err == nil {
		t.Fatal("want error")
	}
	if r.Epoch() != want {
		t.Fatalf("failed retire advanced epoch to %d", r.Epoch())
	}
}

func TestLiveListing(t *testing.T) {
	r, _ := NewRegistry(3, 5)
	r.Retire(1)
	id, _, _ := r.Add()
	live := r.Live()
	want := []int{0, 2, id}
	if len(live) != len(want) {
		t.Fatalf("live = %v, want %v", live, want)
	}
	for i := range want {
		if live[i] != want[i] {
			t.Fatalf("live = %v, want %v", live, want)
		}
	}
	if got := r.State(99); got != Unregistered {
		t.Fatalf("state(99) = %v, want Unregistered", got)
	}
}

// TestConcurrentChurn hammers the registry from many goroutines; the race
// detector plus the final accounting validate the locking.
func TestConcurrentChurn(t *testing.T) {
	const workers = 8
	r, _ := NewRegistry(workers, workers*16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id, _, err := r.Add()
				if err != nil {
					return
				}
				if _, err := r.Retire(id); err != nil {
					t.Errorf("retire %d: %v", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.LiveCount(); got != workers {
		t.Fatalf("live after churn = %d, want %d", got, workers)
	}
	if r.Registered() != workers+workers*10 {
		t.Fatalf("registered = %d, want %d", r.Registered(), workers+workers*10)
	}
}
