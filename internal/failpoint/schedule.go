package failpoint

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind is the action a schedule rule performs when it fires.
type Kind int

const (
	// KindDelay sleeps for the rule's Delay inside the window.
	KindDelay Kind = iota
	// KindYield calls runtime.Gosched inside the window.
	KindYield
	// KindFail makes the gate site report failure (e.g. an exhausted
	// chunk pool, a consumer dying before/after its announce). At
	// inject-only sites the result is ignored, so KindFail degrades to
	// a no-op there.
	KindFail
	// KindKill declares the acting consumer crashed via the registered
	// kill function, then reports failure so the site's gate simulates
	// the death. If the kill function declines (or none is registered)
	// the rule does not fire and its Count budget is not consumed.
	KindKill
)

var kindNames = map[Kind]string{
	KindDelay: "delay",
	KindYield: "yield",
	KindFail:  "fail",
	KindKill:  "kill",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

func parseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("failpoint: unknown action %q (want delay|yield|fail|kill)", name)
}

// Rule scripts one site's behaviour within a Schedule.
type Rule struct {
	Site  Site
	Kind  Kind
	Delay time.Duration // KindDelay only
	// Rate is the per-visit firing probability in [0,1]. 1 fires on
	// every visit. Decisions are a pure function of (schedule seed,
	// site, visit ordinal), so a given seed replays identically.
	Rate float64
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
}

// ruleState pairs a Rule with its mutable visit/firing counters, keeping
// Rule itself a copyable value.
type ruleState struct {
	Rule
	visits atomic.Uint64
	fired  atomic.Int64
}

// String renders the rule in schedule-spec syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Site.String())
	b.WriteByte('=')
	b.WriteString(r.Kind.String())
	if r.Kind == KindDelay {
		b.WriteByte(':')
		b.WriteString(r.Delay.String())
	}
	if r.Rate > 0 && r.Rate < 1 {
		fmt.Fprintf(&b, "@%s", strconv.FormatFloat(r.Rate, 'g', -1, 64))
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, "#%d", r.Count)
	}
	return b.String()
}

// Schedule is a seeded, replayable set of rules. Arm registers one hook per
// scripted site; every firing decision derives from the seed alone, so
// printing Seed()+Spec() after a failure is enough to reproduce it (up to
// the scheduler interleaving the faults provoke).
type Schedule struct {
	seed  uint64
	rules []*ruleState
	armed bool
}

// NewSchedule builds an empty schedule with the given seed.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{seed: seed}
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() uint64 { return s.seed }

// Add appends a rule. Rate outside (0,1] is normalized to 1 (always fire).
// A kill rule on the membership.before-epoch-publish site is silently
// downgraded to fail: that site fires inside the membership control plane
// with its locks held, and the kill function re-enters the same locks —
// a guaranteed self-deadlock, never a useful fault.
func (s *Schedule) Add(r Rule) *Schedule {
	if r.Rate <= 0 || r.Rate > 1 {
		r.Rate = 1
	}
	if r.Kind == KindKill && r.Site == MembershipBeforeEpochPublish {
		r.Kind = KindFail
	}
	// The converse upgrade on the mid-steal site: its gate simulates the
	// thief dying after the ownership CAS, which is only sound when the
	// thief is actually declared crashed (the stranded chunk is reclaimed
	// through the departed-owner rescue). A bare fail would strand the
	// chunk under a live owner and silently lose its tasks.
	if r.Kind == KindFail && r.Site == MembershipKillMidSteal {
		r.Kind = KindKill
	}
	s.rules = append(s.rules, &ruleState{Rule: r})
	return s
}

// ParseSchedule parses a comma-separated schedule spec with seed. Each rule
// is `site=action[:delay][@rate][#count]`:
//
//	steal.after-owner-cas=delay:200us@0.2
//	membership.kill-mid-steal=kill@0.01#2
//	chunkpool.exhausted=fail@0.5
//	checkempty.between-scans=yield
//
// delay applies to the delay action; @rate is a probability in (0,1]
// (default 1); #count caps total firings (default unlimited).
func ParseSchedule(seed uint64, spec string) (*Schedule, error) {
	s := NewSchedule(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		siteStr, actionStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("failpoint: rule %q: want site=action[:delay][@rate][#count]", part)
		}
		site, err := ParseSite(strings.TrimSpace(siteStr))
		if err != nil {
			return nil, err
		}
		r := Rule{Site: site, Rate: 1}
		if head, cntStr, found := cutLast(actionStr, '#'); found {
			n, err := strconv.Atoi(cntStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("failpoint: rule %q: bad count %q", part, cntStr)
			}
			r.Count = n
			actionStr = head
		}
		actionStr = strings.TrimSpace(actionStr)
		if head, rateStr, found := cutLast(actionStr, '@'); found {
			rate, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || rate <= 0 || rate > 1 {
				return nil, fmt.Errorf("failpoint: rule %q: bad rate %q (want (0,1])", part, rateStr)
			}
			r.Rate = rate
			actionStr = head
		}
		kindStr, delayStr, hasDelay := strings.Cut(actionStr, ":")
		r.Kind, err = parseKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, fmt.Errorf("failpoint: rule %q: %v", part, err)
		}
		if hasDelay {
			if r.Kind != KindDelay {
				return nil, fmt.Errorf("failpoint: rule %q: duration only valid for delay", part)
			}
			d, err := time.ParseDuration(strings.TrimSpace(delayStr))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("failpoint: rule %q: bad duration %q", part, delayStr)
			}
			r.Delay = d
		} else if r.Kind == KindDelay {
			r.Delay = 100 * time.Microsecond
		}
		s.Add(r)
	}
	return s, nil
}

// cutLast splits s at the last occurrence of sep, trimming space from both
// halves. The `#count` and `@rate` suffixes bind after the delay, so they
// must be cut from the right.
func cutLast(s string, sep byte) (before, after string, found bool) {
	if i := strings.LastIndexByte(s, sep); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
	}
	return strings.TrimSpace(s), "", false
}

// Spec renders the schedule back to its parseable spec string, with rules
// grouped per site in declaration order.
func (s *Schedule) Spec() string {
	parts := make([]string, len(s.rules))
	for i, r := range s.rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Fired returns how many times each rule has fired, keyed by the rule's
// spec string (for post-run diagnostics).
func (s *Schedule) Fired() map[string]int64 {
	out := make(map[string]int64, len(s.rules))
	for _, r := range s.rules {
		out[r.String()] += r.fired.Load()
	}
	return out
}

// FiredRule pairs a rule (by value) with its firing count so far.
type FiredRule struct {
	Rule
	Fired int64
}

// FiredRules returns every rule with its firing count, in declaration
// order — the structured counterpart of Fired for callers that need the
// rule's Site/Kind (e.g. a harness computing a crash loss budget).
func (s *Schedule) FiredRules() []FiredRule {
	out := make([]FiredRule, len(s.rules))
	for i, r := range s.rules {
		out[i] = FiredRule{Rule: r.Rule, Fired: r.fired.Load()}
	}
	return out
}

// TotalFired returns the total number of rule firings so far.
func (s *Schedule) TotalFired() int64 {
	var n int64
	for _, r := range s.rules {
		n += r.fired.Load()
	}
	return n
}

// Arm registers the schedule's rules with the global registry (one hook per
// scripted site; multiple rules on one site are evaluated in declaration
// order, first firing action wins). Arm replaces any hooks previously set
// on those sites. Call Disarm (or Reset) when done.
func (s *Schedule) Arm() {
	bySite := make(map[Site][]*ruleState)
	var order []Site
	for _, r := range s.rules {
		if _, seen := bySite[r.Site]; !seen {
			order = append(order, r.Site)
		}
		bySite[r.Site] = append(bySite[r.Site], r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, site := range order {
		rules := bySite[site]
		seed := s.seed
		Set(site, func(site Site, id int) bool {
			for _, r := range rules {
				if r.apply(seed, site, id) {
					return true
				}
			}
			return false
		})
	}
	s.armed = true
}

// Disarm clears the hooks Arm registered. Firing counters survive for
// post-run inspection; re-Arm continues the visit sequence.
func (s *Schedule) Disarm() {
	if !s.armed {
		return
	}
	seen := make(map[Site]bool)
	for _, r := range s.rules {
		if !seen[r.Site] {
			seen[r.Site] = true
			Clear(r.Site)
		}
	}
	s.armed = false
}

// apply evaluates one rule for one visit; reports whether the rule fired
// with a failure result (gate sites treat true as "simulate the failure").
func (r *ruleState) apply(seed uint64, site Site, id int) bool {
	visit := r.visits.Add(1) - 1
	if r.Rate < 1 {
		// Deterministic per-visit coin flip: a pure function of
		// (seed, site, visit), independent of scheduling.
		h := splitmix64(seed ^ (uint64(site)+1)<<32 ^ visit)
		if float64(h>>11)/(1<<53) >= r.Rate {
			return false
		}
	}
	if r.Count > 0 {
		// Reserve a firing slot; release it below if a kill declines.
		if r.fired.Add(1) > int64(r.Count) {
			r.fired.Add(-1)
			return false
		}
	}
	switch r.Kind {
	case KindDelay:
		time.Sleep(r.Delay)
	case KindYield:
		runtime.Gosched()
	case KindFail:
		if r.Count == 0 {
			r.fired.Add(1)
		}
		return true
	case KindKill:
		if !Kill(id) {
			if r.Count > 0 {
				r.fired.Add(-1)
			}
			return false
		}
		if r.Count == 0 {
			r.fired.Add(1)
		}
		return true
	}
	if r.Count == 0 {
		r.fired.Add(1)
	}
	return false
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// for replayable per-visit firing decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
