// Package failpoint is a fault-injection layer for the pool's narrow
// synchronization windows.
//
// The paper's correctness argument lives in windows a few instructions wide:
// the two-CAS steal race (§1.5.3), the announce-then-recheck consume path,
// the checkEmpty indicator rounds (§1.5.5). Stress runs only visit those
// interleavings by luck; a failpoint visits them on purpose. Each hot path
// declares named sites (Site) at its delicate points; a test or the chaos
// harness registers hooks that inject delays, forced yields, simulated
// chunk-pool exhaustion, or a consumer crash exactly inside the window.
//
// Cost discipline. Sites are evaluated through Inject/Fail, whose fast path
// is `Compiled && Armed.Load() != 0` — one inlined atomic load of a
// read-mostly word when the package is compiled in and no hook is
// registered. Builds with the `salsa_nofailpoint` tag set Compiled to a
// constant false, so the compiler deletes every site body entirely: a
// disabled build pays zero atomics and zero branches on the fast path (see
// DESIGN.md §9). The default build keeps sites live so ordinary `go test`
// can script faults without special tags.
//
// Concurrency. Hook registration (Set/Clear/Reset) is a control-plane
// operation serialized on an internal mutex; evaluation is lock-free. Hooks
// run on the calling goroutine, inside the window — they may sleep, yield,
// or call back into control-plane APIs like KillConsumer, but must not call
// back into the data-plane operation that hosts the site.
package failpoint

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Site names one injection point in the pool's synchronization windows.
type Site int32

const (
	// ProduceBeforePublish fires in the produce path after a chunk slot
	// has been reserved but before the task pointer is published.
	// Inject-only. id = producer id.
	ProduceBeforePublish Site = iota

	// ChunkpoolExhausted gates every spare-chunk dequeue. A hook
	// returning true simulates an empty chunk pool — produce() fails,
	// triggering producer-based balancing failover and, when every pool
	// refuses, forced expansion (or ErrSaturated on the TryPut path).
	// id = -1 (the chunk pool does not know its caller).
	ChunkpoolExhausted

	// ConsumeBeforeAnnounce gates the consume path just before the
	// owner announces a take by advancing the node index. A hook
	// returning true simulates the consumer dying there: the take
	// unwinds with no task and no announcement — loss-free, because
	// nothing was claimed yet. id = consumer id.
	ConsumeBeforeAnnounce

	// ConsumeAfterAnnounce gates the window between the announce and
	// the ownership re-check — the heart of the §1.5.3 race. A hook
	// returning true simulates the consumer dying with one slot
	// announced; per the crash model, thieves treat that single slot as
	// consumed, so each fire can lose at most one task. id = consumer id.
	ConsumeAfterAnnounce

	// ConsumeBeforeCommit fires on the owner's fast path after the
	// post-announce ownership re-check has passed but before the plain
	// store that commits the take — the last instant at which the
	// announced slot is still racing the world. A consumer frozen here
	// that is then declared departed commits into a chunk the rescue
	// path may already have republished (DESIGN.md §9); the schedule
	// explorer lives in this window. Inject-only. id = consumer id.
	ConsumeBeforeCommit

	// StealAfterValidate fires once a thief has hazard-validated a
	// victim node but not yet examined the chunk's ownership word — the
	// window in which the node can go stale (its chunk stolen, its
	// owner departed) while the thief still believes it. Freezing a
	// thief here forces the snapshot check and the departed-owner
	// rescue to run against a world that moved on. Inject-only.
	// id = consumer id (thief).
	StealAfterValidate

	// StealBeforeOwnerCAS fires between publishing the victim node in
	// the thief's steal list and the ownership CAS (Algorithm 5 lines
	// 115–116). Gate: true simulates the thief dying there — harmless,
	// the chunk is still owned by the victim. id = consumer id (thief).
	StealBeforeOwnerCAS

	// StealAfterOwnerCAS fires immediately after the thief wins the
	// ownership CAS, before the replacement node is published (lines
	// 116–131) — the nastiest window in the algorithm. Inject-only
	// (delays/yields stretch the two-CAS race); crashes here are
	// scripted through MembershipKillMidSteal. id = consumer id (thief).
	StealAfterOwnerCAS

	// MembershipKillMidSteal gates the same post-CAS window as
	// StealAfterOwnerCAS. A hook returning true simulates the thief
	// crashing mid-steal: the chunk is left stranded under the dead
	// thief's ownership and the survivors' rescue path (DESIGN.md §9)
	// must reclaim it. The schedule's kill action declares the consumer
	// crashed (KillFunc) before dying. id = consumer id (thief).
	MembershipKillMidSteal

	// MembershipBeforeEpochPublish fires inside a membership departure
	// after the pool is abandoned and its spares drained, but before
	// the next epoch is published — the window where producers still
	// route to a pool that already refuses inserts. Inject-only.
	// id = departing consumer id.
	MembershipBeforeEpochPublish

	// CheckEmptyBetweenScans fires between rounds of the checkEmpty
	// protocol — stretching the probe is the classic attack on
	// linearizable emptiness, which the indicator rounds must absorb.
	// Inject-only. id = probing consumer id.
	CheckEmptyBetweenScans

	// LaneFlushBeforePublish fires inside a producer's SPSC lane flush,
	// after the buffered run has been drained out of the lane but
	// before it is published into chunks through the batch produce
	// path — the window in which the run is visible neither in the lane
	// nor in any pool, so an emptiness probe racing the flush is the
	// classic attack. Inject-only. id = producer id.
	LaneFlushBeforePublish

	// NumSites is the number of defined sites.
	NumSites
)

var siteNames = [NumSites]string{
	ProduceBeforePublish:         "produce.before-publish",
	ChunkpoolExhausted:           "chunkpool.exhausted",
	ConsumeBeforeAnnounce:        "consume.before-announce",
	ConsumeAfterAnnounce:         "consume.after-announce",
	ConsumeBeforeCommit:          "consume.before-commit",
	StealAfterValidate:           "steal.after-validate",
	StealBeforeOwnerCAS:          "steal.before-owner-cas",
	StealAfterOwnerCAS:           "steal.after-owner-cas",
	MembershipKillMidSteal:       "membership.kill-mid-steal",
	MembershipBeforeEpochPublish: "membership.before-epoch-publish",
	CheckEmptyBetweenScans:       "checkempty.between-scans",
	LaneFlushBeforePublish:       "lane.flush-before-publish",
}

// String returns the site's catalogue name (e.g. "steal.after-owner-cas").
func (s Site) String() string {
	if s >= 0 && s < NumSites {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", int32(s))
}

// ParseSite resolves a catalogue name back to its Site.
func ParseSite(name string) (Site, error) {
	for s, n := range siteNames {
		if n == name {
			return Site(s), nil
		}
	}
	return 0, fmt.Errorf("failpoint: unknown site %q", name)
}

// SiteNames returns the full site catalogue in declaration order.
func SiteNames() []string {
	return append([]string(nil), siteNames[:]...)
}

// Hook runs inside a site's window on the goroutine that hit it. id is the
// acting handle's id (consumer id for consume/steal/checkempty sites,
// producer id for produce sites, -1 when the layer does not know). The
// return value matters only at gate sites (evaluated via Fail): true
// simulates the site's failure — an exhausted chunk pool, a crashed
// consumer — and false lets the operation proceed.
type Hook func(site Site, id int) bool

// Observer is a site-visit callback registered with SetObserver: it runs at
// EVERY armed site visit, after the site's own hook (if any) has evaluated,
// so a hook-driven state change (a crash declaration, a simulated failure)
// is already in effect when the observer sees the visit. The schedule
// controller (internal/dst) registers one to turn every site into a
// cooperative yield point.
type Observer func(site Site, id int)

// Armed counts registered hooks; the disarmed fast path is a single load of
// it. A registered observer is counted too. Exported as a raw atomic — not
// behind an accessor — because the pool's hot paths are generic and the
// compiler does not inline cross-package calls into imported generic
// instantiations: even trivial Fail/Inject calls cost a real CALL there.
// Hot sites therefore guard the call themselves,
//
//	if failpoint.Compiled && failpoint.Armed.Load() != 0 { failpoint.Inject(...) }
//
// which compiles to one inlined atomic load and a never-taken branch when
// disarmed (and to nothing at all under salsa_nofailpoint). Treat Armed as
// read-only outside this package; registration keeps it in sync.
var Armed atomic.Int32

var (
	hooks [NumSites]atomic.Pointer[Hook]

	// observer is the registered site-visit callback; see SetObserver.
	observer atomic.Pointer[Observer]

	// mu serializes registration (control plane only).
	mu sync.Mutex

	// killFunc is the registered crash-declaration callback; see SetKillFunc.
	killFunc atomic.Pointer[func(id int) bool]
)

// Active reports whether any hook is registered (false in salsa_nofailpoint
// builds, where the call compiles to a constant).
func Active() bool { return Compiled && Armed.Load() != 0 }

// Inject evaluates an inject-only site: the hook's side effects (sleep,
// yield, crash declarations) happen inside the window; its return value is
// ignored. Free when no hook is registered; compiled out entirely under the
// salsa_nofailpoint tag.
func Inject(site Site, id int) {
	if Compiled && Armed.Load() != 0 {
		eval(site, id)
	}
}

// Fail evaluates a gate site and reports whether the hook asked the caller
// to simulate the site's failure. Free when no hook is registered; compiled
// out entirely (constant false) under the salsa_nofailpoint tag.
func Fail(site Site, id int) bool {
	if Compiled && Armed.Load() != 0 {
		return eval(site, id)
	}
	return false
}

func eval(site Site, id int) bool {
	if site < 0 || site >= NumSites {
		return false
	}
	failed := false
	if h := hooks[site].Load(); h != nil {
		failed = (*h)(site, id)
	}
	// Observer runs last: a kill or failure the hook just declared must be
	// visible to the rest of the system while the observer (typically a
	// schedule controller parking this goroutine) holds the caller inside
	// the window.
	if o := observer.Load(); o != nil {
		(*o)(site, id)
	}
	return failed
}

// Set registers h at site, replacing any previous hook. A nil h is Clear.
func Set(site Site, h Hook) {
	if site < 0 || site >= NumSites {
		panic(fmt.Sprintf("failpoint: Set on invalid site %d", site))
	}
	if h == nil {
		Clear(site)
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if hooks[site].Swap(&h) == nil {
		Armed.Add(1)
	}
}

// Clear removes the hook at site, if any.
func Clear(site Site) {
	if site < 0 || site >= NumSites {
		return
	}
	mu.Lock()
	defer mu.Unlock()
	if hooks[site].Swap(nil) != nil {
		Armed.Add(-1)
	}
}

// Reset clears every hook and the kill function. Tests and the chaos
// harness call it between scenarios. The observer is deliberately NOT
// cleared: it belongs to the schedule controller, whose lifetime brackets
// whole runs, and a scenario's Reset must not tear down the controller
// that is driving it. Use SetObserver(nil) to remove it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for i := range hooks {
		if hooks[i].Swap(nil) != nil {
			Armed.Add(-1)
		}
	}
	killFunc.Store(nil)
}

// SetObserver registers f as the global site-visit observer, replacing any
// previous one; nil unregisters. Registration arms the package (the
// disarmed fast path is unchanged — one atomic load). At most one observer
// exists at a time; the schedule controller serializes its runs around it.
func SetObserver(f Observer) {
	mu.Lock()
	defer mu.Unlock()
	var p *Observer
	if f != nil {
		p = &f
	}
	old := observer.Swap(p)
	switch {
	case old == nil && p != nil:
		Armed.Add(1)
	case old != nil && p == nil:
		Armed.Add(-1)
	}
}

// SetKillFunc registers the crash-declaration callback used by kill actions:
// it receives the consumer id acting at the site and returns whether the
// kill was granted (the harness refuses, e.g., to kill the last live
// consumer). A kill action whose callback declines does not simulate death.
// Pass nil to unregister.
func SetKillFunc(f func(id int) bool) {
	if f == nil {
		killFunc.Store(nil)
		return
	}
	killFunc.Store(&f)
}

// Kill invokes the registered kill function for id, reporting whether a
// crash was actually declared. With no function registered it reports false.
func Kill(id int) bool {
	if f := killFunc.Load(); f != nil {
		return (*f)(id)
	}
	return false
}
