package failpoint

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSiteNamesRoundTrip(t *testing.T) {
	for s := Site(0); s < NumSites; s++ {
		name := s.String()
		got, err := ParseSite(name)
		if err != nil {
			t.Fatalf("ParseSite(%q): %v", name, err)
		}
		if got != s {
			t.Fatalf("ParseSite(%q) = %v, want %v", name, got, s)
		}
	}
	if _, err := ParseSite("no.such-site"); err == nil {
		t.Fatal("ParseSite accepted an unknown name")
	}
	if len(SiteNames()) != int(NumSites) {
		t.Fatalf("SiteNames() has %d entries, want %d", len(SiteNames()), NumSites)
	}
}

func TestSetClearArming(t *testing.T) {
	defer Reset()
	if Active() {
		t.Fatal("Active before any Set")
	}
	var hits atomic.Int32
	Set(StealAfterOwnerCAS, func(site Site, id int) bool {
		hits.Add(1)
		return true
	})
	if !Active() {
		t.Fatal("not Active after Set")
	}
	Inject(StealAfterOwnerCAS, 3)
	if !Fail(StealAfterOwnerCAS, 3) {
		t.Fatal("Fail did not report the hook's true")
	}
	// Unhooked sites stay free even while another site is armed.
	if Fail(ConsumeBeforeAnnounce, 0) {
		t.Fatal("unhooked site reported failure")
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("hook ran %d times, want 2", got)
	}
	Clear(StealAfterOwnerCAS)
	if Active() {
		t.Fatal("Active after Clear")
	}
	Inject(StealAfterOwnerCAS, 3)
	if got := hits.Load(); got != 2 {
		t.Fatalf("cleared hook still ran (%d hits)", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	Set(ProduceBeforePublish, func(Site, int) bool { return true })
	Set(ChunkpoolExhausted, func(Site, int) bool { return true })
	SetKillFunc(func(int) bool { return true })
	Reset()
	if Active() {
		t.Fatal("Active after Reset")
	}
	if Kill(1) {
		t.Fatal("kill func survived Reset")
	}
}

func TestKillFunc(t *testing.T) {
	defer Reset()
	if Kill(7) {
		t.Fatal("Kill with no registered func reported true")
	}
	var asked []int
	SetKillFunc(func(id int) bool {
		asked = append(asked, id)
		return id != 0
	})
	if Kill(0) {
		t.Fatal("kill func's refusal not propagated")
	}
	if !Kill(7) {
		t.Fatal("kill func's grant not propagated")
	}
	if len(asked) != 2 || asked[0] != 0 || asked[1] != 7 {
		t.Fatalf("kill func saw %v, want [0 7]", asked)
	}
}

func TestParseScheduleSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want []Rule
	}{
		{"", nil},
		{"steal.after-owner-cas=delay:200us@0.2", []Rule{
			{Site: StealAfterOwnerCAS, Kind: KindDelay, Delay: 200 * time.Microsecond, Rate: 0.2},
		}},
		{"membership.kill-mid-steal=kill@0.01#2", []Rule{
			{Site: MembershipKillMidSteal, Kind: KindKill, Rate: 0.01, Count: 2},
		}},
		{"chunkpool.exhausted=fail@0.5, checkempty.between-scans=yield", []Rule{
			{Site: ChunkpoolExhausted, Kind: KindFail, Rate: 0.5},
			{Site: CheckEmptyBetweenScans, Kind: KindYield, Rate: 1},
		}},
		{"consume.after-announce=kill#1", []Rule{
			{Site: ConsumeAfterAnnounce, Kind: KindKill, Rate: 1, Count: 1},
		}},
		{"produce.before-publish=delay", []Rule{
			{Site: ProduceBeforePublish, Kind: KindDelay, Delay: 100 * time.Microsecond, Rate: 1},
		}},
	}
	for _, tc := range cases {
		s, err := ParseSchedule(1, tc.spec)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", tc.spec, err)
		}
		if len(s.rules) != len(tc.want) {
			t.Fatalf("ParseSchedule(%q): %d rules, want %d", tc.spec, len(s.rules), len(tc.want))
		}
		for i, w := range tc.want {
			g := s.rules[i]
			if g.Site != w.Site || g.Kind != w.Kind || g.Delay != w.Delay || g.Rate != w.Rate || g.Count != w.Count {
				t.Fatalf("ParseSchedule(%q) rule %d = %+v, want %+v", tc.spec, i, g, w)
			}
		}
		// Spec() must parse back to the same rules.
		rt, err := ParseSchedule(1, s.Spec())
		if err != nil {
			t.Fatalf("re-parse of Spec %q: %v", s.Spec(), err)
		}
		if len(rt.rules) != len(s.rules) {
			t.Fatalf("Spec round-trip of %q changed rule count", tc.spec)
		}
		for i := range s.rules {
			if rt.rules[i].String() != s.rules[i].String() {
				t.Fatalf("Spec round-trip of %q: rule %d %q != %q",
					tc.spec, i, rt.rules[i].String(), s.rules[i].String())
			}
		}
	}

	for _, bad := range []string{
		"nonsense",
		"steal.after-owner-cas=explode",
		"no.such-site=delay",
		"steal.after-owner-cas=yield:5ms",
		"steal.after-owner-cas=delay@2",
		"steal.after-owner-cas=delay#0",
	} {
		if _, err := ParseSchedule(1, bad); err == nil {
			t.Fatalf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

func TestScheduleDeterministicFiring(t *testing.T) {
	defer Reset()
	run := func(seed uint64) []bool {
		s, err := ParseSchedule(seed, "chunkpool.exhausted=fail@0.3")
		if err != nil {
			t.Fatal(err)
		}
		s.Arm()
		defer s.Disarm()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Fail(ChunkpoolExhausted, -1)
		}
		return out
	}
	a, b := run(42), run(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d differs between identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.3 fired %d/%d times — not probabilistic", fired, len(a))
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestScheduleCountCap(t *testing.T) {
	defer Reset()
	s, err := ParseSchedule(7, "chunkpool.exhausted=fail#3")
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	fired := 0
	for i := 0; i < 100; i++ {
		if Fail(ChunkpoolExhausted, -1) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("count-capped rule fired %d times, want 3", fired)
	}
	if got := s.TotalFired(); got != 3 {
		t.Fatalf("TotalFired = %d, want 3", got)
	}
}

func TestScheduleKillConsultsKillFunc(t *testing.T) {
	defer Reset()
	granted := atomic.Bool{}
	SetKillFunc(func(id int) bool { return granted.Load() })
	s, err := ParseSchedule(9, "membership.kill-mid-steal=kill#1")
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	// Declined kills neither fire nor consume the count budget.
	for i := 0; i < 5; i++ {
		if Fail(MembershipKillMidSteal, 2) {
			t.Fatal("kill fired while kill func declines")
		}
	}
	granted.Store(true)
	if !Fail(MembershipKillMidSteal, 2) {
		t.Fatal("kill did not fire once granted")
	}
	if Fail(MembershipKillMidSteal, 2) {
		t.Fatal("kill fired past its #1 budget")
	}
	if got := s.TotalFired(); got != 1 {
		t.Fatalf("TotalFired = %d, want 1", got)
	}
}

func TestScheduleCountCapConcurrent(t *testing.T) {
	defer Reset()
	s, err := ParseSchedule(11, "consume.after-announce=fail#5")
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if Fail(ConsumeAfterAnnounce, 0) {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 5 {
		t.Fatalf("concurrent count-capped rule fired %d times, want 5", got)
	}
}

func TestMultipleRulesSameSite(t *testing.T) {
	defer Reset()
	// A delay rule that never gates plus a fail rule behind it: the site
	// should sleep then report failure.
	s, err := ParseSchedule(3, "chunkpool.exhausted=delay:1ms,chunkpool.exhausted=fail#1")
	if err != nil {
		t.Fatal(err)
	}
	s.Arm()
	defer s.Disarm()
	start := time.Now()
	if !Fail(ChunkpoolExhausted, -1) {
		t.Fatal("second rule's fail not reached after first rule's delay")
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay rule did not sleep")
	}
	if Fail(ChunkpoolExhausted, -1) {
		t.Fatal("fail#1 fired twice")
	}
	f := s.Fired()
	if f["chunkpool.exhausted=delay:1ms"] != 2 {
		t.Fatalf("delay rule fired %d, want 2 (unbudgeted, every visit)", f["chunkpool.exhausted=delay:1ms"])
	}
}

func TestDisarmStopsFiring(t *testing.T) {
	defer Reset()
	s, _ := ParseSchedule(5, "chunkpool.exhausted=fail")
	s.Arm()
	if !Fail(ChunkpoolExhausted, -1) {
		t.Fatal("armed schedule did not fire")
	}
	s.Disarm()
	if Active() {
		t.Fatal("still Active after Disarm")
	}
	if Fail(ChunkpoolExhausted, -1) {
		t.Fatal("disarmed schedule fired")
	}
}
