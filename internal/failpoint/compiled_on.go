//go:build !salsa_nofailpoint

package failpoint

// Compiled reports whether failpoint sites are compiled into this build.
// Default builds keep them live (one atomic load per site when unarmed) so
// ordinary `go test` can script faults; build with -tags salsa_nofailpoint
// to turn every site into dead code.
const Compiled = true
