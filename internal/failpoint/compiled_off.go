//go:build salsa_nofailpoint

package failpoint

// Compiled is false under the salsa_nofailpoint tag: Inject/Fail reduce to
// constant-false branches the compiler deletes, so hot paths carry no
// atomics and no calls from the fault-injection layer.
const Compiled = false
