package affinity

import (
	"runtime"
	"testing"
)

func TestPinAndUnpin(t *testing.T) {
	res := Pin(0)
	defer Unpin()
	if runtime.GOOS == "linux" {
		if res == Unsupported {
			t.Fatal("sched_setaffinity failed on Linux")
		}
		cpus, ok := CurrentMask()
		if !ok {
			t.Fatal("CurrentMask failed on Linux")
		}
		if len(cpus) != 1 || cpus[0] != 0 {
			t.Fatalf("mask = %v, want [0]", cpus)
		}
	}
}

func TestPinClampsOutOfRangeCPU(t *testing.T) {
	res := Pin(runtime.NumCPU() + 17)
	defer Unpin()
	if runtime.GOOS == "linux" && res == Unsupported {
		t.Fatal("clamped pin failed on Linux")
	}
	if runtime.NumCPU() > 1 && res != Clamped && runtime.GOOS == "linux" {
		// On a 1-CPU machine NumCPU+17 clamps to 0 == valid; with more
		// CPUs the result must be reported as clamped.
		t.Errorf("Pin(out-of-range) = %v, want Clamped", res)
	}
}

func TestUnpinRestoresWideMask(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("affinity masks are Linux-only")
	}
	Pin(0)
	Unpin()
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cpus, ok := CurrentMask()
	if !ok {
		t.Fatal("CurrentMask failed")
	}
	if len(cpus) < runtime.NumCPU() {
		t.Errorf("mask %v narrower than %d CPUs after Unpin", cpus, runtime.NumCPU())
	}
}

func TestPinResultString(t *testing.T) {
	for r, want := range map[PinResult]string{
		Pinned:      "pinned",
		Clamped:     "clamped",
		Unsupported: "unsupported",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}
