// Package affinity pins OS threads to CPUs.
//
// The paper's evaluation pins every producer and consumer to a core so that
// access lists reflect real proximity and so the Dice-style displacement
// fence (§1.6.1) is possible. Go offers runtime.LockOSThread but no portable
// core pinning; on Linux this package issues the raw sched_setaffinity
// system call (stdlib syscall only). On other platforms, or when the mask
// cannot be applied (e.g. a 1-CPU container asked for core 7), pinning
// degrades to a recorded no-op: the logical placement still drives access
// lists and the NUMA simulator, which is what the reproduced experiments
// consume.
package affinity

import "runtime"

// PinResult reports what Pin actually achieved.
type PinResult int

const (
	// Pinned means the OS accepted the affinity mask for this thread.
	Pinned PinResult = iota
	// Clamped means the requested CPU does not exist; the thread was
	// pinned to requested % NumCPU instead.
	Clamped
	// Unsupported means the platform offers no thread affinity control;
	// the placement remains logical.
	Unsupported
)

func (r PinResult) String() string {
	switch r {
	case Pinned:
		return "pinned"
	case Clamped:
		return "clamped"
	default:
		return "unsupported"
	}
}

// Pin locks the calling goroutine to its OS thread and binds that thread to
// the given CPU. Callers must invoke it from the goroutine to pin and should
// pair it with runtime.UnlockOSThread when done.
func Pin(cpu int) PinResult {
	runtime.LockOSThread()
	n := runtime.NumCPU()
	res := Pinned
	if cpu >= n {
		cpu %= n
		res = Clamped
	}
	if !setAffinity(cpu) {
		return Unsupported
	}
	return res
}

// Unpin releases the OS-thread lock taken by Pin. The kernel affinity mask
// is restored to all CPUs on platforms that support it.
func Unpin() {
	clearAffinity()
	runtime.UnlockOSThread()
}
