//go:build !linux

package affinity

func setAffinity(int) bool { return false }

func clearAffinity() {}

// CurrentMask is unavailable off Linux.
func CurrentMask() ([]int, bool) { return nil, false }
