//go:build linux

package affinity

import (
	"runtime"
	"syscall"
	"unsafe"
)

// cpuSet mirrors the kernel's cpu_set_t for sched_setaffinity: 1024 bits.
type cpuSet [16]uint64

func setAffinity(cpu int) bool {
	var set cpuSet
	set[cpu/64] |= 1 << (uint(cpu) % 64)
	return schedSetaffinity(&set)
}

func clearAffinity() {
	var set cpuSet
	for i := 0; i < runtime.NumCPU() && i < len(set)*64; i++ {
		set[i/64] |= 1 << (uint(i) % 64)
	}
	schedSetaffinity(&set)
}

func schedSetaffinity(set *cpuSet) bool {
	// pid 0 = calling thread. RawSyscall keeps us on the locked thread.
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_SETAFFINITY,
		0,
		uintptr(unsafe.Sizeof(*set)),
		uintptr(unsafe.Pointer(set)),
	)
	return errno == 0
}

// CurrentMask returns the CPUs the calling thread may run on, for tests.
func CurrentMask() ([]int, bool) {
	var set cpuSet
	_, _, errno := syscall.RawSyscall(
		syscall.SYS_SCHED_GETAFFINITY,
		0,
		uintptr(unsafe.Sizeof(set)),
		uintptr(unsafe.Pointer(&set)),
	)
	if errno != 0 {
		return nil, false
	}
	var cpus []int
	for i := 0; i < len(set)*64; i++ {
		if set[i/64]&(1<<(uint(i)%64)) != 0 {
			cpus = append(cpus, i)
		}
	}
	return cpus, true
}
