// Package modelcheck exhaustively explores thread interleavings of the
// SALSA steal protocol at atomic-step granularity — a mechanical companion
// to the paper's hand proofs (§1.7).
//
// The production code cannot be paused between individual atomic
// operations, and a 1-CPU host rarely opens the §1.5.3 race windows at
// all. This package therefore re-expresses the protocol's hot operations —
// the owner's takeTask (Algorithm 5 lines 83–98), the thief's steal (lines
// 108–138) and a concurrent producer's insert (Algorithm 4) — as explicit
// sequences of atomic steps over a small shared state (one chunk, one
// victim node, one thief node), and runs a memoized depth-first search
// over *every* interleaving of those steps under sequential consistency.
//
// Checked properties:
//
//   - no task is returned twice (Lemma 12) — detected online the moment a
//     second return happens;
//   - after all actors finish, every produced task was returned exactly
//     once (Claim 4's conservation, since the model's actors drain);
//   - the victim node's index never decreases (Lemma 8) — checked on
//     every step.
//
// Removing any of the paper's safeguards — the post-announce ownership
// re-check (line 91), the CAS on the contended slot (lines 95/134), the
// prevIdx re-validation (line 125), or the ownership tag — makes the
// checker report violations; the mutation tests pin that down.
//
// A second model (emptiness.go) explores the checkEmpty protocol of
// §1.5.5: it reproduces the Figure 1.3 schedule that fools a naive single
// traversal, exhibits an adversary that fools an insufficient round count
// even with the indicator, and verifies the protocol's round requirement
// restores soundness (Claim 3).
package modelcheck

import "fmt"

// Slot values in the model.
const (
	empty = 0  // ⊥: not yet produced
	taken = -1 // TAKEN
	// positive values are task ids
)

const (
	maxSlots   = 4
	actorLimit = 4
)

// Actor ids.
const (
	victimID = 0
	thiefID  = 1
	prodID   = 2
	thief2ID = 3
)

// World is the shared memory of the model: one chunk with its owner word
// and the referring nodes of the victim and both thieves. It is a
// comparable value type so states can be memoized.
type World struct {
	ChunkSize int8

	// Chunk state.
	Slots [maxSlots]int8 // task slots
	Owner int8           // consumer id owning the chunk
	Tag   int8           // owner tag, bumped by every ownership CAS

	// Victim-side referring node.
	VictimIdx   int8
	VictimValid bool // chunk pointer != nil (line 132 clears it)

	// First thief's node.
	ThiefIdx   int8
	ThiefValid bool

	// Second thief's node.
	Thief2Idx   int8
	Thief2Valid bool

	// Steal-back node (the victim's re-acquisition in the ABA scenario).
	VictimBIdx   int8
	VictimBValid bool

	// Per-node owner-word snapshots (owner id and tag at node creation),
	// indexed by nodeRef. A steal's ownership CAS presents its source
	// node's snapshot as the expected value — the discipline that closes
	// the three-consumer steal/steal-back hole (see internal/core
	// Steal and the FreshOwnerRead mutation below).
	SnapOwner [4]int8
	SnapTag   [4]int8

	// SentinelReturns counts fast-path takes that would have returned
	// the TAKEN sentinel as a user task — only possible when both the
	// ownership tag and the defensive fast-path guard are disabled.
	SentinelReturns int8

	// Producer cursor (Algorithm 4's prodIdx).
	ProdIdx int8

	// RetCount[t] counts how many times task id t was returned.
	RetCount [maxSlots + 1]int8
}

// regs are an actor's private registers between steps (comparable).
type regs struct {
	idx     int8
	prevIdx int8
	task    int8
	owner   int8
	tag     int8
}

// step is one atomic action. It mutates the world/registers and returns
// the next program counter, or done=true.
type step func(w *World, r *regs) (next int, done bool)

type program []step

type actor struct {
	id   int8
	prog program
	pc   int8
	regs regs
	done bool
}

// Config sets up one exploration.
type Config struct {
	ChunkSize int // 2..4
	Produced  int // tasks pre-produced into the chunk (ids 1..Produced)

	// WithProducer adds a concurrent producer inserting the remaining
	// slots (ids Produced+1..ChunkSize) during the run.
	WithProducer bool

	// WithSecondThief adds a second thief stealing from the first thief
	// (the §1.5.3 re-steal scenario).
	WithSecondThief bool

	// WithStealBack builds the §1.5.3 ABA cycle exactly: thief T1 reads
	// the owner word and stalls; thief T2 steals the chunk from the
	// victim; the victim steals it back (fresh node, same owner id);
	// T1's stale CAS then fires. With the tag it must fail; without it
	// (SkipTag) T1 adopts a stale node and the invariants break.
	WithStealBack bool

	// Mutations (checker validation): disable one safeguard and watch
	// the invariants break.
	SkipOwnerRecheck bool // drop Algorithm 5 line 91's re-check
	SkipSlotCAS      bool // replace the contended-slot CAS with a store
	SkipPrevIdxCheck bool // drop line 125's re-validation
	SkipTag          bool // ownership CAS ignores the tag
	SkipTakenGuard   bool // drop the fast path's defensive TAKEN check

	// FreshOwnerRead reverts to the paper's implicit discipline: the
	// steal's CAS expected value is read fresh from the owner word
	// instead of taken from the source node's creation snapshot. Under
	// WithStealBack this admits a double take — the erratum this
	// reproduction documents in DESIGN.md §7.
	FreshOwnerRead bool
}

// Result summarises an exploration.
type Result struct {
	StatesExplored int
	TerminalStates int
	Violations     []string
	// Trace is the step schedule that produced the first violation.
	Trace []string
}

// Ok reports whether no interleaving violated the specification.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

type memoKey struct {
	w     World
	pcs   [actorLimit]int8
	done  [actorLimit]bool
	r     [actorLimit]regs
	count int8
}

type explorer struct {
	cfg        Config
	seen       map[memoKey]struct{}
	states     int
	terminal   int
	violations []string

	// Trace holds the step schedule (actor id, pc) that led to the first
	// violation, for diagnosis.
	Trace []string
}

// Explore runs the memoized DFS over all interleavings.
func Explore(cfg Config) Result {
	if cfg.ChunkSize < 2 || cfg.ChunkSize > maxSlots {
		panic("modelcheck: ChunkSize must be in [2,4]")
	}
	if cfg.Produced < 1 || cfg.Produced > cfg.ChunkSize {
		panic("modelcheck: Produced must be in [1,ChunkSize]")
	}
	w := World{
		ChunkSize:   int8(cfg.ChunkSize),
		Owner:       victimID,
		VictimIdx:   -1,
		VictimValid: true,
		ThiefIdx:    -1,
		Thief2Idx:   -1,
		ProdIdx:     int8(cfg.Produced),
	}
	for i := 0; i < cfg.Produced; i++ {
		w.Slots[i] = int8(i + 1)
	}

	var actors []actor
	if cfg.WithStealBack {
		// The ABA cycle: T1 (stale CAS), T2 (first steal), and the
		// victim stealing back from T2 into a fresh node.
		actors = []actor{
			{id: thiefID, prog: stealProgram(thiefID, victimID, nodeVictim, nodeThief, cfg)},
			{id: thief2ID, prog: stealProgram(thief2ID, victimID, nodeVictim, nodeThief2, cfg)},
			{id: victimID, prog: stealProgram(victimID, thief2ID, nodeThief2, nodeVictimB, cfg)},
		}
		if cfg.WithProducer {
			actors = append(actors, actor{id: prodID, prog: produceRest(cfg)})
		}
	} else {
		actors = []actor{
			{id: victimID, prog: consumeLoop(victimID, nodeVictim, cfg)},
			{id: thiefID, prog: stealProgram(thiefID, victimID, nodeVictim, nodeThief, cfg)},
		}
		if cfg.WithProducer {
			actors = append(actors, actor{id: prodID, prog: produceRest(cfg)})
		}
		if cfg.WithSecondThief {
			actors = append(actors, actor{id: thief2ID,
				prog: stealProgram(thief2ID, thiefID, nodeThief, nodeThief2, cfg)})
		}
	}

	e := &explorer{cfg: cfg, seen: make(map[memoKey]struct{})}
	e.dfs(w, actors)
	return Result{
		StatesExplored: e.states,
		TerminalStates: e.terminal,
		Violations:     e.violations,
		Trace:          e.Trace,
	}
}

func key(w World, actors []actor) memoKey {
	k := memoKey{w: w, count: int8(len(actors))}
	for i, a := range actors {
		k.pcs[i] = a.pc
		k.done[i] = a.done
		k.r[i] = a.regs
	}
	return k
}

func (e *explorer) dfs(w World, actors []actor) {
	e.dfsPath(w, actors, nil)
}

func (e *explorer) dfsPath(w World, actors []actor, path []string) {
	if len(e.violations) >= 8 {
		return
	}
	k := key(w, actors)
	if _, dup := e.seen[k]; dup {
		return
	}
	e.seen[k] = struct{}{}
	e.states++

	ranAny := false
	for i := range actors {
		if actors[i].done {
			continue
		}
		ranAny = true
		w2 := w
		actors2 := make([]actor, len(actors))
		copy(actors2, actors)
		a := &actors2[i]
		stepLabel := fmt.Sprintf("actor%d@pc%d", a.id, a.pc)
		next, done := a.prog[a.pc](&w2, &a.regs)
		childPath := append(append([]string(nil), path...), stepLabel)
		if w2.VictimIdx < w.VictimIdx {
			e.violations = append(e.violations, fmt.Sprintf(
				"victim idx regressed %d→%d", w.VictimIdx, w2.VictimIdx))
			if e.Trace == nil {
				e.Trace = childPath
			}
			return
		}
		violated := false
		for t := 1; t <= int(w2.ProdIdx); t++ {
			if w2.RetCount[t] > 1 {
				e.violations = append(e.violations, fmt.Sprintf(
					"task %d returned twice (world %+v)", t, w2))
				violated = true
			}
		}
		if w2.SentinelReturns > 0 {
			e.violations = append(e.violations, fmt.Sprintf(
				"TAKEN sentinel returned as a task (world %+v)", w2))
			violated = true
		}
		if violated {
			if e.Trace == nil {
				e.Trace = childPath
			}
			return
		}
		a.pc = int8(next)
		a.done = done
		e.dfsPath(w2, actors2, childPath)
	}
	if !ranAny {
		e.terminal++
		for t := 1; t <= int(w.ProdIdx); t++ {
			if w.RetCount[t] == 0 {
				e.violations = append(e.violations, fmt.Sprintf(
					"task %d lost at terminal state %+v", t, w))
				return
			}
			if w.RetCount[t] > 1 {
				e.violations = append(e.violations, fmt.Sprintf(
					"task %d returned %d times at terminal state %+v", t, w.RetCount[t], w))
				return
			}
		}
	}
}
