package modelcheck

import "testing"

// TestFig13NaiveTraversalFooled reproduces the paper's Figure 1.3 exactly:
// a single traversal with no indicator answers "empty" while one task was
// present at every instant of the probe.
func TestFig13NaiveTraversalFooled(t *testing.T) {
	r := ExploreEmptiness(EmptinessConfig{
		InitialTasks:  [2]int8{0, 1},
		Takers:        1,
		TakerPool:     []int{1},
		Rounds:        1,
		BouncerPuts:   1,
		SkipIndicator: true,
	})
	if r.Ok() {
		t.Fatalf("Figure 1.3 schedule not found in %d states", r.StatesExplored)
	}
	t.Logf("fooled: %s", r.Violations[0])
}

// TestFig13ProtocolSound: with the indicator and the protocol's round
// count (takers+1), the same adversary cannot fool the probe.
func TestFig13ProtocolSound(t *testing.T) {
	r := ExploreEmptiness(EmptinessConfig{
		InitialTasks: [2]int8{0, 1},
		Takers:       1,
		TakerPool:    []int{1},
		Rounds:       2,
		BouncerPuts:  1,
	})
	if !r.Ok() {
		t.Fatalf("protocol violated: %v", r.Violations)
	}
	if r.ProbesTrue == 0 {
		t.Fatal("no interleaving let the probe finish; the model is vacuous")
	}
}

// TestInsufficientRoundsFooled: even WITH the indicator, too few rounds
// can be fooled — three stalled takers and a task bounced ahead of the
// prober defeat a 2-round probe. This is the schedule the paper's n-round
// requirement (Claim 3) exists to exclude.
func TestInsufficientRoundsFooled(t *testing.T) {
	r := ExploreEmptiness(EmptinessConfig{
		InitialTasks: [2]int8{0, 1},
		Takers:       3,
		TakerPool:    []int{1, 0, 1},
		Rounds:       2,
		BouncerPuts:  3,
	})
	if r.Ok() {
		t.Fatalf("2-round probe not fooled in %d states", r.StatesExplored)
	}
	t.Logf("fooled: %s", r.Violations[0])
}

// TestSufficientRoundsSound: raising the round count past the stalled-take
// budget restores soundness for the same adversary (the paper's n = number
// of consumers is a safe upper bound; the model shows 3 rounds already
// suffice against this 3-taker adversary on two pools).
func TestSufficientRoundsSound(t *testing.T) {
	for _, rounds := range []int{3, 4} {
		r := ExploreEmptiness(EmptinessConfig{
			InitialTasks: [2]int8{0, 1},
			Takers:       3,
			TakerPool:    []int{1, 0, 1},
			Rounds:       rounds,
			BouncerPuts:  3,
		})
		if !r.Ok() {
			t.Fatalf("rounds=%d violated: %v", rounds, r.Violations)
		}
		if r.ProbesTrue == 0 {
			t.Fatalf("rounds=%d: no completing probe", rounds)
		}
	}
}

// TestEmptinessValidation covers the config guards.
func TestEmptinessValidation(t *testing.T) {
	for _, bad := range []EmptinessConfig{
		{Takers: 1, TakerPool: nil, Rounds: 1},
		{Takers: 4, TakerPool: []int{0, 1, 0, 1}, Rounds: 1},
		{Takers: 0, TakerPool: nil, Rounds: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			ExploreEmptiness(bad)
		}()
	}
}
