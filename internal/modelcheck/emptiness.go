package modelcheck

import "fmt"

// This file model-checks the checkEmpty protocol (paper §1.5.5, Algorithm
// 2 lines 30–36 and Algorithm 6): a prober traverses all pools n times,
// planting its indicator bit on the first round and verifying on every
// visit both that the pool looks empty and that no possibly-emptying
// operation cleared the bit. Claim 3 of the paper states a true answer is
// linearizable: the system was empty at some instant during the probe.
//
// The model explores every interleaving of
//
//   - the prober (configurable round count — the protocol's is the number
//     of consumers, i.e. stalling takers + 1),
//   - "taker" consumers that remove a pool's last task and clear the
//     indicator in a LATER atomic step (the stall window the n-round
//     argument exists for), and
//   - optionally the Figure 1.3 bouncer: a producer that inserts a task
//     into the pool the prober has already visited while a consumer takes
//     the not-yet-visited pool's task — the schedule that fools a single
//     traversal.
//
// A violation is a probe that returns "empty" although the system held at
// least one task at every instant of the probe. The tests confirm the
// protocol's round count is exactly right: with n rounds no interleaving
// violates; with fewer rounds (or no indicator) the checker produces the
// fooling schedule.

const ePools = 2

// eWorld is the emptiness model's shared state (comparable, memoizable).
type eWorld struct {
	Tasks     [ePools]int8 // tasks per pool
	Indicator [ePools]bool // the prober's bit in each pool's indicator

	ProbeActive bool // between the probe's first and last step
	EverEmpty   bool // all pools were simultaneously empty at some instant of the probe
	ProbeResult int8 // 0 = still running, 1 = returned empty, 2 = returned non-empty
}

func (w *eWorld) systemEmpty() bool {
	for _, t := range w.Tasks {
		if t > 0 {
			return false
		}
	}
	return true
}

type eStep func(w *eWorld, r *regs) (int, bool)

type eProgram []eStep

type eActor struct {
	prog eProgram
	pc   int8
	regs regs
	done bool
}

// EmptinessConfig sets up one exploration.
type EmptinessConfig struct {
	// InitialTasks per pool.
	InitialTasks [ePools]int8
	// Takers is the number of stalling consumers: each takes one pool's
	// task and clears the indicator in a separate, arbitrarily delayed
	// step.
	Takers int
	// TakerPool selects which pool each taker drains (len == Takers).
	TakerPool []int
	// Rounds is the prober's traversal count. The protocol's value is
	// Takers+1 (n consumers: the takers plus the prober itself).
	Rounds int
	// BouncerPuts adds a Figure 1.3 producer that inserts that many
	// tasks, alternating pools starting at pool 0 (the pool the prober
	// visits first) — combined with InitialTasks {0,1}, one taker and
	// Rounds 1 this is the paper's Figure 1.3.
	BouncerPuts int
	// SkipIndicator disables the indicator check entirely (the naive
	// traversal of §1.5.5's opening paragraph).
	SkipIndicator bool
}

// EmptinessResult reports the exploration.
type EmptinessResult struct {
	StatesExplored int
	ProbesTrue     int // terminal states where the probe answered "empty"
	Violations     []string
}

// Ok reports whether every "empty" answer was linearizable.
func (r EmptinessResult) Ok() bool { return len(r.Violations) == 0 }

// proberProgram builds the Algorithm 2 checkEmpty loop. Each (round, pool)
// visit is three atomic steps: set the bit (round 0 only), read emptiness,
// read the bit back.
func proberProgram(cfg EmptinessConfig) eProgram {
	var prog eProgram
	// Step 0: probe begins.
	prog = append(prog, func(w *eWorld, r *regs) (int, bool) {
		w.ProbeActive = true
		if w.systemEmpty() {
			w.EverEmpty = true
		}
		return 1, false
	})
	for round := 0; round < cfg.Rounds; round++ {
		for pool := 0; pool < ePools; pool++ {
			round, pool := round, pool
			if round == 0 && !cfg.SkipIndicator {
				prog = append(prog, func(w *eWorld, r *regs) (int, bool) {
					w.Indicator[pool] = true // setIndicator(myId)
					return int(0), false     // next computed by runner
				})
			}
			prog = append(prog, func(w *eWorld, r *regs) (int, bool) {
				if w.Tasks[pool] > 0 { // !p.isEmpty()
					w.ProbeResult = 2
					w.ProbeActive = false
					return 0, true
				}
				return 0, false
			})
			if !cfg.SkipIndicator {
				prog = append(prog, func(w *eWorld, r *regs) (int, bool) {
					if !w.Indicator[pool] { // !p.checkIndicator(myId)
						w.ProbeResult = 2
						w.ProbeActive = false
						return 0, true
					}
					return 0, false
				})
			}
		}
	}
	// Final step: all rounds clean → return "empty".
	prog = append(prog, func(w *eWorld, r *regs) (int, bool) {
		w.ProbeResult = 1
		w.ProbeActive = false
		return 0, true
	})
	// Rewrite sequential nexts (every non-terminal step advances by 1).
	for i := range prog {
		i := i
		inner := prog[i]
		prog[i] = func(w *eWorld, r *regs) (int, bool) {
			next, done := inner(w, r)
			if done {
				return next, true
			}
			return i + 1, false
		}
	}
	return prog
}

// takerProgram removes one task from the pool (if present) and clears the
// prober's indicator bits in a separate step — the stall window.
func takerProgram(pool int) eProgram {
	return eProgram{
		func(w *eWorld, r *regs) (int, bool) {
			if w.Tasks[pool] == 0 {
				return 0, true // nothing to take
			}
			w.Tasks[pool]--
			return 1, false
		},
		func(w *eWorld, r *regs) (int, bool) {
			// clearIndicator (Algorithm 6): per-pool in SALSA; the
			// model clears the taken pool's bit.
			w.Indicator[pool] = false
			return 0, true
		},
	}
}

// bouncerProgram is Figure 1.3's producer generalised to several puts,
// alternating pools starting at pool 0.
func bouncerProgram(puts int) eProgram {
	var prog eProgram
	for i := 0; i < puts; i++ {
		i := i
		last := i == puts-1
		next := i + 1
		prog = append(prog, func(w *eWorld, r *regs) (int, bool) {
			w.Tasks[i%ePools]++
			return next, last
		})
	}
	return prog
}

type eKey struct {
	w    eWorld
	pcs  [5]int8
	done [5]bool
}

type eExplorer struct {
	seen       map[eKey]struct{}
	states     int
	probesTrue int
	violations []string
}

// ExploreEmptiness runs the exhaustive interleaving search.
func ExploreEmptiness(cfg EmptinessConfig) EmptinessResult {
	if cfg.Takers != len(cfg.TakerPool) {
		panic("modelcheck: TakerPool must have Takers entries")
	}
	if cfg.Takers+2 > 5 {
		panic("modelcheck: too many actors")
	}
	if cfg.Rounds < 1 {
		panic("modelcheck: Rounds must be >= 1")
	}
	w := eWorld{Tasks: cfg.InitialTasks}
	actors := []eActor{{prog: proberProgram(cfg)}}
	for _, pool := range cfg.TakerPool {
		actors = append(actors, eActor{prog: takerProgram(pool)})
	}
	if cfg.BouncerPuts > 0 {
		actors = append(actors, eActor{prog: bouncerProgram(cfg.BouncerPuts)})
	}
	e := &eExplorer{seen: make(map[eKey]struct{})}
	e.dfs(w, actors)
	return EmptinessResult{
		StatesExplored: e.states,
		ProbesTrue:     e.probesTrue,
		Violations:     e.violations,
	}
}

func (e *eExplorer) dfs(w eWorld, actors []eActor) {
	if len(e.violations) >= 8 {
		return
	}
	var k eKey
	k.w = w
	for i, a := range actors {
		k.pcs[i] = a.pc
		k.done[i] = a.done
	}
	if _, dup := e.seen[k]; dup {
		return
	}
	e.seen[k] = struct{}{}
	e.states++

	ranAny := false
	for i := range actors {
		if actors[i].done {
			continue
		}
		ranAny = true
		w2 := w
		actors2 := make([]eActor, len(actors))
		copy(actors2, actors)
		a := &actors2[i]
		next, done := a.prog[a.pc](&w2, &a.regs)
		if w2.ProbeActive && w2.systemEmpty() {
			w2.EverEmpty = true
		}
		a.pc = int8(next)
		a.done = done
		if w2.ProbeResult == 1 && !w2.EverEmpty {
			e.violations = append(e.violations, fmt.Sprintf(
				"probe answered empty but the system was never empty during it (world %+v)", w2))
			continue
		}
		e.dfs(w2, actors2)
	}
	if !ranAny && w.ProbeResult == 1 {
		e.probesTrue++
	}
}
