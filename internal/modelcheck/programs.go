package modelcheck

// nodeRef selects which referring node a program operates on.
type nodeRef int

const (
	nodeVictim nodeRef = iota
	nodeThief
	nodeThief2
	nodeVictimB
)

func getIdx(w *World, n nodeRef) int8 {
	switch n {
	case nodeVictim:
		return w.VictimIdx
	case nodeThief:
		return w.ThiefIdx
	case nodeThief2:
		return w.Thief2Idx
	default:
		return w.VictimBIdx
	}
}

func setIdx(w *World, n nodeRef, v int8) {
	switch n {
	case nodeVictim:
		w.VictimIdx = v
	case nodeThief:
		w.ThiefIdx = v
	case nodeThief2:
		w.Thief2Idx = v
	default:
		w.VictimBIdx = v
	}
}

func getValid(w *World, n nodeRef) bool {
	switch n {
	case nodeVictim:
		return w.VictimValid
	case nodeThief:
		return w.ThiefValid
	case nodeThief2:
		return w.Thief2Valid
	default:
		return w.VictimBValid
	}
}

func setValid(w *World, n nodeRef, v bool) {
	switch n {
	case nodeVictim:
		w.VictimValid = v
	case nodeThief:
		w.ThiefValid = v
	case nodeThief2:
		w.Thief2Valid = v
	default:
		w.VictimBValid = v
	}
}

// mustWaitForProducer reports whether an empty slot may still be filled —
// the model's stand-in for "the real consumer would retry later".
func mustWaitForProducer(w *World, cfg Config) bool {
	return cfg.WithProducer && int(w.ProdIdx) < int(w.ChunkSize)
}

func setSnapshot(w *World, n nodeRef, owner, tag int8) {
	w.SnapOwner[n] = owner
	w.SnapTag[n] = tag
}

// consumeSteps builds the owner-side takeTask loop (Algorithm 5 lines
// 74–98) over the given node, with program counters offset by base. The
// loop exits (done) when the node's chunk is gone, the chunk is exhausted,
// ownership is lost, or no further task can appear.
//
// Step map (relative):
//
//	0: line 85 chunk-nil check + line 86 idx read + exhaustion check
//	1: line 86 slot read + line 87 ⊥ check (spins while a producer runs)
//	2: line 88 pre-announce ownership check
//	3: line 90 announce (idx store)
//	4: line 91 post-announce ownership re-check → fast or CAS path
//	5: line 92 fast-path take (plain store) → loop
//	6: line 95 contended take (CAS) → done (line 97 leaves the chunk)
func consumeSteps(me int8, node nodeRef, base int, cfg Config) program {
	rel := func(i int) int { return base + i }
	return program{
		// 0
		func(w *World, r *regs) (int, bool) {
			if !getValid(w, node) {
				return 0, true // line 85: chunk stolen/consumed
			}
			r.idx = getIdx(w, node)
			if int(r.idx)+1 >= int(w.ChunkSize) {
				return 0, true // exhausted (checkLast recycles in real code)
			}
			return rel(1), false
		},
		// 1
		func(w *World, r *regs) (int, bool) {
			r.task = w.Slots[r.idx+1]
			if r.task == empty {
				if mustWaitForProducer(w, cfg) {
					return rel(1), false // retry later (spin; memo prunes)
				}
				return 0, true // line 87: no task, none coming
			}
			if r.task == taken {
				// Stale node: a slot beyond our index is already
				// consumed. The implementation's defensive guard
				// bails out; without it the fast path would return
				// the TAKEN sentinel as a task.
				if cfg.SkipTakenGuard {
					w.SentinelReturns++
					return 0, true
				}
				return 0, true
			}
			return rel(2), false
		},
		// 2
		func(w *World, r *regs) (int, bool) {
			if w.Owner != me {
				return 0, true // line 88
			}
			return rel(3), false
		},
		// 3
		func(w *World, r *regs) (int, bool) {
			setIdx(w, node, r.idx+1) // line 90: announce
			return rel(4), false
		},
		// 4
		func(w *World, r *regs) (int, bool) {
			if w.Owner == me || cfg.SkipOwnerRecheck {
				return rel(5), false // line 91 passed: fast path
			}
			return rel(6), false // stolen under us: one CAS take
		},
		// 5
		func(w *World, r *regs) (int, bool) {
			w.Slots[r.idx+1] = taken // line 92: plain store
			w.RetCount[r.task]++
			return rel(0), false // take returned; consume loops
		},
		// 6
		func(w *World, r *regs) (int, bool) {
			if cfg.SkipSlotCAS {
				w.Slots[r.idx+1] = taken
				w.RetCount[r.task]++
				return 0, true
			}
			if r.task != taken && w.Slots[r.idx+1] == r.task { // CAS (line 95)
				w.Slots[r.idx+1] = taken
				w.RetCount[r.task]++
			}
			return 0, true // line 97: currentNode ← ⊥; owner lost, stop
		},
	}
}

// consumeLoop is a stand-alone consume program for the chunk's owner.
func consumeLoop(me int8, node nodeRef, cfg Config) program {
	return consumeSteps(me, node, 0, cfg)
}

// stealProgram builds the thief side: Algorithm 5 lines 108–138 against
// srcNode (owned by victimOwner), publishing dstNode, followed by the
// owner-side drain loop over dstNode.
//
// Step map:
//
//	0: lines 109–112 choose node, read prevIdx, exhaustion check
//	1: line 113 slot read (⊥ ⇒ back off / wait)
//	2: line 115 steal-list append + read owner word (with tag)
//	3: line 116 ownership CAS (tag-checked)
//	4: line 119–120 idx re-read, exhaustion abort
//	5: line 123 slot read
//	6: lines 124–128 re-validation and idx claim
//	7: lines 129–131 publish new node
//	8: line 132 unlink the victim's node
//	9: line 134 contended take (CAS)
//	10..: drain loop (consumeSteps over dstNode)
func stealProgram(me int8, victimOwner int8, srcNode, dstNode nodeRef, cfg Config) program {
	const drainBase = 10
	prog := program{
		// 0
		func(w *World, r *regs) (int, bool) {
			if !getValid(w, srcNode) || w.Owner != victimOwner {
				return 0, true // nothing to steal (line 109–111)
			}
			// The CAS expected value is the source node's creation
			// snapshot (the fix); FreshOwnerRead reverts to reading
			// the live owner word (the paper's implicit discipline).
			if cfg.FreshOwnerRead {
				r.owner = w.Owner
				r.tag = w.Tag
			} else {
				r.owner = w.SnapOwner[srcNode]
				r.tag = w.SnapTag[srcNode]
				if w.Owner != r.owner || (w.Tag != r.tag && !cfg.SkipTag) {
					return 0, true // node superseded: back off
				}
			}
			r.prevIdx = getIdx(w, srcNode) // line 112
			if int(r.prevIdx)+1 >= int(w.ChunkSize) {
				return 0, true // line 113 first clause
			}
			return 1, false
		},
		// 1
		func(w *World, r *regs) (int, bool) {
			if w.Slots[r.prevIdx+1] == empty { // line 113 second clause
				if mustWaitForProducer(w, cfg) {
					return 0, false // retry the whole choose (spin)
				}
				return 0, true
			}
			return 2, false
		},
		// 2
		func(w *World, r *regs) (int, bool) {
			// line 115: append prevNode to my steal list — no shared
			// state in the one-chunk model; the owner word was already
			// captured at step 0, before the index read.
			return 3, false
		},
		// 3
		func(w *World, r *regs) (int, bool) {
			// line 116: CAS(owner, (victim,tag), (me,tag+1)).
			if w.Owner == r.owner && (cfg.SkipTag || w.Tag == r.tag) {
				w.Owner = me
				w.Tag++
				return 4, false
			}
			return 0, true // line 117: failed, entry removed
		},
		// 4
		func(w *World, r *regs) (int, bool) {
			r.idx = getIdx(w, srcNode) // line 119
			if int(r.idx)+1 >= int(w.ChunkSize) {
				return 0, true // line 120: drained while stealing
			}
			return 5, false
		},
		// 5
		func(w *World, r *regs) (int, bool) {
			r.task = w.Slots[r.idx+1] // line 123
			return 6, false
		},
		// 6
		func(w *World, r *regs) (int, bool) {
			if r.task != empty { // line 124
				if w.Owner != me && r.idx != r.prevIdx && !cfg.SkipPrevIdxCheck {
					return 0, true // line 125–127: back off
				}
				r.idx++ // line 128
			}
			return 7, false
		},
		// 7
		func(w *World, r *regs) (int, bool) {
			setIdx(w, dstNode, r.idx) // lines 129–131: publish new node
			setValid(w, dstNode, true)
			// The new node snapshots the owner word the thief's CAS
			// installed: (me, capturedTag+1).
			setSnapshot(w, dstNode, me, r.tag+1)
			return 8, false
		},
		// 8
		func(w *World, r *regs) (int, bool) {
			setValid(w, srcNode, false) // line 132
			if r.task == empty {
				return drainBase, false // line 133: adopted empty chunk
			}
			return 9, false
		},
		// 9
		func(w *World, r *regs) (int, bool) {
			if cfg.SkipSlotCAS {
				if r.task != taken {
					w.Slots[r.idx] = taken
					w.RetCount[r.task]++
				}
				return drainBase, false
			}
			if r.task != taken && w.Slots[r.idx] == r.task { // line 134 CAS
				w.Slots[r.idx] = taken
				w.RetCount[r.task]++
			}
			return drainBase, false // lines 136–138
		},
	}
	drain := consumeSteps(me, dstNode, drainBase, cfg)
	return append(prog, drain...)
}

// produceRest is the concurrent producer (Algorithm 4): it fills the
// remaining slots one task at a time — the slot store is visible before
// the cursor bump, like the real code's publish order.
func produceRest(cfg Config) program {
	return program{
		// 0: write the task into the next free slot.
		func(w *World, r *regs) (int, bool) {
			if int(w.ProdIdx) >= int(w.ChunkSize) {
				return 0, true
			}
			r.idx = w.ProdIdx
			w.Slots[r.idx] = r.idx + 1 // task ids are slot+1
			return 1, false
		},
		// 1: bump the produced count (the checker's conservation bound).
		func(w *World, r *regs) (int, bool) {
			w.ProdIdx = r.idx + 1
			return 0, false
		},
	}
}
