package modelcheck

import "testing"

// TestProtocolHolds explores every interleaving of the base scenarios and
// expects zero violations — the mechanical counterpart of the paper's
// Lemmas 8–12.
func TestProtocolHolds(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"owner-vs-thief/2slots", Config{ChunkSize: 2, Produced: 2}},
		{"owner-vs-thief/3slots", Config{ChunkSize: 3, Produced: 3}},
		{"owner-vs-thief/4slots", Config{ChunkSize: 4, Produced: 4}},
		{"with-producer/half-full", Config{ChunkSize: 3, Produced: 1, WithProducer: true}},
		{"with-producer/4slots", Config{ChunkSize: 4, Produced: 2, WithProducer: true}},
		{"resteal/3slots", Config{ChunkSize: 3, Produced: 3, WithSecondThief: true}},
		{"resteal/4slots", Config{ChunkSize: 4, Produced: 4, WithSecondThief: true}},
		{"resteal+producer", Config{ChunkSize: 3, Produced: 2, WithProducer: true, WithSecondThief: true}},
		{"steal-back-ABA/3slots", Config{ChunkSize: 3, Produced: 3, WithStealBack: true}},
		{"steal-back-ABA/4slots", Config{ChunkSize: 4, Produced: 4, WithStealBack: true}},
		{"steal-back-ABA+producer", Config{ChunkSize: 3, Produced: 2, WithStealBack: true, WithProducer: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := Explore(c.cfg)
			if !res.Ok() {
				for _, v := range res.Violations {
					t.Error(v)
				}
			}
			if res.TerminalStates == 0 {
				t.Fatal("exploration reached no terminal state")
			}
			t.Logf("states=%d terminals=%d", res.StatesExplored, res.TerminalStates)
		})
	}
}

// TestMutationsAreCaught removes each of the paper's safeguards in turn;
// the checker must find a violation, proving both that the safeguards are
// load-bearing and that the checker can see the bugs they prevent.
func TestMutationsAreCaught(t *testing.T) {
	base := Config{ChunkSize: 3, Produced: 3}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"skip-owner-recheck (line 91)", func(c *Config) { c.SkipOwnerRecheck = true }},
		{"skip-slot-CAS (lines 95/134)", func(c *Config) { c.SkipSlotCAS = true }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := base
			m.mutate(&cfg)
			res := Explore(cfg)
			if res.Ok() {
				t.Fatalf("mutation %q not caught in %d states", m.name, res.StatesExplored)
			}
			t.Logf("caught: %s", res.Violations[0])
		})
	}
}

// TestTagMutationCaughtUnderStealBack: dropping the ownership tag is
// dangerous in the ABA cycle (steal, steal-back, stale CAS). The checker
// must catch it.
func TestTagMutationCaughtUnderStealBack(t *testing.T) {
	mutated := Explore(Config{ChunkSize: 3, Produced: 3, WithStealBack: true, SkipTag: true})
	if mutated.Ok() {
		t.Fatalf("tag-less steal-back not caught in %d states", mutated.StatesExplored)
	}
	t.Logf("caught: %s", mutated.Violations[0])
}

// TestFreshOwnerReadErratum demonstrates the erratum this reproduction
// documents (DESIGN.md §7): with the CAS expected value read fresh from
// the owner word — a natural reading of the paper's line 116 — the
// three-consumer steal/steal-back interleaving double-takes a task even
// with the tag enabled. The node-snapshot discipline (the default here and
// in internal/core) closes the hole.
func TestFreshOwnerReadErratum(t *testing.T) {
	broken := Explore(Config{ChunkSize: 3, Produced: 3, WithStealBack: true, FreshOwnerRead: true})
	if broken.Ok() {
		t.Fatalf("fresh-owner-read steal-back not caught in %d states", broken.StatesExplored)
	}
	t.Logf("erratum reproduced: %s", broken.Violations[0])
	for i, step := range broken.Trace {
		t.Logf("  %2d: %s", i, step)
	}

	fixed := Explore(Config{ChunkSize: 3, Produced: 3, WithStealBack: true})
	if !fixed.Ok() {
		t.Fatalf("snapshot discipline violated: %v", fixed.Violations)
	}
}

// TestPrevIdxMutation explores the line-125 safeguard. Finding: under the
// snapshot CAS discipline, dropping the check produces no violation in any
// modeled scenario — a chunk mid-steal (between the ownership CAS and the
// line-131 publish) cannot be re-stolen at all, because the only reachable
// node for it still carries the *previous* owner's snapshot, which fails
// the re-thief's sanity check. The paper needed line 125 precisely because
// its fresh-read CAS left that window open. The implementation keeps the
// check as defence in depth (the model is small-scope: one chunk, ≤4
// slots, ≤4 actors).
func TestPrevIdxMutation(t *testing.T) {
	for _, cfg := range []Config{
		{ChunkSize: 3, Produced: 3, WithSecondThief: true},
		{ChunkSize: 3, Produced: 3, WithSecondThief: true, SkipPrevIdxCheck: true},
		{ChunkSize: 3, Produced: 3, WithStealBack: true, SkipPrevIdxCheck: true},
		{ChunkSize: 3, Produced: 2, WithProducer: true, WithSecondThief: true, SkipPrevIdxCheck: true},
	} {
		r := Explore(cfg)
		if !r.Ok() {
			t.Fatalf("config %+v violated: %v", cfg, r.Violations)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{ChunkSize: 1, Produced: 1},
		{ChunkSize: 5, Produced: 1},
		{ChunkSize: 3, Produced: 0},
		{ChunkSize: 3, Produced: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", bad)
				}
			}()
			Explore(bad)
		}()
	}
}
