package framework

import (
	"fmt"

	"salsa/internal/failpoint"
	"salsa/internal/flight"
	"salsa/internal/membership"
	"salsa/internal/scpool"
	"salsa/internal/telemetry"
	"salsa/internal/topology"
)

// This file implements the framework's elastic-membership control plane:
// runtime consumer join (AddConsumer), graceful retirement
// (RetireConsumer) and crash declaration (KillConsumer) on a live pool.
//
// The design keeps the paper's hot paths untouched. All membership state a
// data-plane operation needs is gathered into an immutable epoch value
// published through one atomic pointer; put/get/steal/checkEmpty read the
// pointer once per operation and never take a lock. Membership changes are
// rare control-plane events: they serialize on fw.mu, build the next epoch
// from the current one (copy-on-write, including the topology placement)
// and publish it with a single store.
//
// Departed consumers leave three things behind, each handled without new
// synchronization:
//
//   - Their queued tasks. The pool is marked abandoned, which only makes
//     Produce fail (the §1.5.4 balancing signal, reused for routing);
//     survivors reclaim the chunks through the ordinary Steal path because
//     every pool ever registered stays on every consumer's victim list.
//   - Their spare chunks. Drained into the nearest live survivor's chunk
//     pool at retirement, restoring the producer-based balancing signal.
//   - Their empty-indicator slot. Abandoned pools stay in the checkEmpty
//     scan set forever — the "permanently raised" rule — because in-flight
//     produces, forced puts and a producer's current chunk can still land
//     tasks there after the epoch flips; dropping the pool from the scan
//     would let checkEmpty linearize an emptiness that a reclaimable task
//     refutes. Consumer ids are never reused for the same reason (a fresh
//     pool under a recycled id would alias the abandoned pool's id in
//     chunk owner words).

// epoch is an immutable membership view. Hot paths load it once per
// operation via Framework.epoch; every field is read-only after publish.
type epoch[T any] struct {
	// version is the membership epoch number (monotonic, starts at 0).
	version uint64

	// placement maps every registered producer and consumer to cores;
	// it grows copy-on-write as consumers join.
	placement *topology.Placement

	// pools holds the SCPool of every consumer ever registered, indexed
	// by id. Pools are never removed: abandoned pools remain steal
	// victims and checkEmpty subjects forever (see the file comment).
	pools []scpool.SCPool[T]

	// abandoned[id] reports whether consumer id departed.
	abandoned []bool

	// live lists the non-departed consumer ids, ascending.
	live []int

	// prodAccess[p] is producer p's access list for this epoch: the
	// live pools sorted nearest-first from the producer's core. Forced
	// puts fall back to prodAccess[p][0].
	prodAccess [][]scpool.SCPool[T]
}

// buildEpoch assembles and publishes the epoch for the given membership
// state. Caller holds fw.mu.
func (fw *Framework[T]) buildEpoch(version uint64, pl *topology.Placement,
	pools []scpool.SCPool[T], abandoned []bool) *epoch[T] {

	live := make([]int, 0, len(pools))
	for id := range pools {
		if !abandoned[id] {
			live = append(live, id)
		}
	}
	prodAccess := make([][]scpool.SCPool[T], len(fw.producers))
	for i := range prodAccess {
		order := pl.ProducerAccessList(i)
		access := make([]scpool.SCPool[T], 0, len(live))
		for _, c := range order {
			if !abandoned[c] {
				access = append(access, pools[c])
			}
		}
		prodAccess[i] = access
	}
	ep := &epoch[T]{
		version:    version,
		placement:  pl,
		pools:      pools,
		abandoned:  abandoned,
		live:       live,
		prodAccess: prodAccess,
	}
	fw.epoch.Store(ep)
	return ep
}

// MembershipEpoch returns the current membership epoch number. Epoch 0 is
// the configuration the framework was built with; every AddConsumer,
// RetireConsumer and KillConsumer advances it by one.
func (fw *Framework[T]) MembershipEpoch() uint64 { return fw.epoch.Load().version }

// LiveConsumers returns the number of consumers that have not departed.
func (fw *Framework[T]) LiveConsumers() int { return len(fw.epoch.Load().live) }

// LiveConsumerIDs returns the live consumer ids, ascending.
func (fw *Framework[T]) LiveConsumerIDs() []int {
	ep := fw.epoch.Load()
	return append([]int(nil), ep.live...)
}

// ConsumerDeparted reports whether consumer id has retired or crashed.
func (fw *Framework[T]) ConsumerDeparted(id int) bool {
	ep := fw.epoch.Load()
	return id >= 0 && id < len(ep.abandoned) && ep.abandoned[id]
}

// SparesDrained returns the total number of spare chunks moved out of
// departing pools into survivors across all membership changes.
func (fw *Framework[T]) SparesDrained() int64 { return fw.sparesDrained.Load() }

// AddConsumer grows the live consumer set by one: it places the new
// consumer on the least-loaded core, builds its SCPool through the
// configured factory, publishes the next epoch and returns the new handle.
// The handle must be driven by a single goroutine, like any other.
//
// Consumer ids are monotonic and never reused; the total number of
// consumers ever registered is bounded by Config.MaxConsumers, because
// substrate capacity (indicator sizes, owner-word ranges) is fixed at
// construction.
func (fw *Framework[T]) AddConsumer() (*Consumer[T], error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()

	id := fw.reg.Registered()
	if id >= fw.reg.Capacity() {
		return nil, fmt.Errorf("framework: consumer capacity %d exhausted (ids are never reused; raise MaxConsumers)",
			fw.reg.Capacity())
	}
	ep := fw.epoch.Load()
	pl, _ := ep.placement.WithConsumerAdded()
	node := pl.ConsumerNode(id)
	pool, err := fw.cfg.NewPool(id, node, len(fw.producers))
	if err != nil {
		return nil, fmt.Errorf("framework: building pool %d: %w", id, err)
	}
	if pool.OwnerID() != id {
		return nil, fmt.Errorf("framework: pool %d reports owner %d", id, pool.OwnerID())
	}
	regID, version, err := fw.reg.Add()
	if err != nil {
		return nil, err
	}
	if regID != id {
		panic(fmt.Sprintf("framework: registry id %d != expected %d", regID, id))
	}

	co := &Consumer[T]{fw: fw, myPool: pool}
	co.state.ID = id
	co.state.FID = fw.cfg.FlightBase + id
	co.state.Node = node
	co.state.Tracer = fw.cfg.Tracer
	fw.consumers = append(fw.consumers, co)

	pools := append(append([]scpool.SCPool[T](nil), ep.pools...), pool)
	abandoned := append(append([]bool(nil), ep.abandoned...), false)
	newEp := fw.buildEpoch(version, pl, pools, abandoned)

	telemetry.EmitMembership(fw.cfg.Tracer, telemetry.MembershipEvent{
		Kind: telemetry.MemberJoined, Consumer: id, Node: node,
		Epoch: version, Live: len(newEp.live),
	})
	// Control ring: multi-writer-safe; id is namespaced by FlightBase so
	// co-resident pools' membership events stay distinguishable.
	flight.RecordControl(flight.KMemberJoin, version, int32(fw.cfg.FlightBase+id), int32(node))
	return co, nil
}

// RetireConsumer gracefully removes consumer id from the live set. The
// caller must have stopped driving the handle first: after retirement the
// handle's Get family panics. The victim's pool is abandoned (Produce
// fails, routing producers to survivors), its spare chunks drain into the
// nearest live survivor, and its queued tasks remain reclaimable through
// the ordinary steal path — no task is lost.
//
// The last live consumer cannot retire: someone has to be able to drain
// the pool.
func (fw *Framework[T]) RetireConsumer(id int) error {
	return fw.depart(id, telemetry.MemberRetired)
}

// KillConsumer declares consumer id crashed, abandoning its pool without
// any cooperation from the victim — the fault-injection path. Identical to
// RetireConsumer except for the recorded cause, and for what the victim
// may have been doing: a consumer killed mid-Get can have announced one
// in-flight task slot that thieves will treat as consumed, so the lost-task
// window is bounded by that single slot (a quiescent victim loses
// nothing). The victim's hazard record is never released, which can keep
// at most two chunks from being recycled — memory, not tasks.
func (fw *Framework[T]) KillConsumer(id int) error {
	return fw.depart(id, telemetry.MemberCrashed)
}

func (fw *Framework[T]) depart(id int, kind telemetry.MembershipKind) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()

	var (
		version uint64
		err     error
	)
	if kind == telemetry.MemberCrashed {
		version, err = fw.reg.Kill(id)
	} else {
		version, err = fw.reg.Retire(id)
	}
	if err != nil {
		return err
	}

	ep := fw.epoch.Load()
	pool := ep.pools[id]
	scpool.Abandon[T](pool) // native flag when supported; routing exclusion below either way

	abandoned := append([]bool(nil), ep.abandoned...)
	abandoned[id] = true

	// Drain the departing pool's spare chunks into the nearest live
	// survivor so the memory and the producer-based balancing signal
	// follow the live set. The access list is distance-sorted from the
	// victim's core, so the first non-departed entry is the natural heir.
	drained := 0
	for _, c := range ep.placement.ConsumerAccessList(id) {
		if c == id || abandoned[c] {
			continue
		}
		drained = scpool.DrainSpares[T](pool, ep.pools[c])
		break
	}
	fw.sparesDrained.Add(int64(drained))

	// killed must be raised before departed: checkLive panics on a departed
	// handle unless it is killed, and a kill can fire from inside the
	// victim's own retrieval (a failpoint hook calling KillConsumer), which
	// must unwind as empty rather than observe a departed/!killed window.
	if kind == telemetry.MemberCrashed {
		fw.consumers[id].killed.Store(true)
	}
	fw.consumers[id].departed.Store(true)
	// Between the registry transition above and the epoch publish below,
	// producers still route to the abandoned pool and checkEmpty still
	// scans the old live set; chaos schedules use this window to assert the
	// straggler-reclaim path.
	failpoint.Inject(failpoint.MembershipBeforeEpochPublish, id)
	newEp := fw.buildEpoch(version, ep.placement, ep.pools, abandoned)

	telemetry.EmitMembership(fw.cfg.Tracer, telemetry.MembershipEvent{
		Kind: kind, Consumer: id, Node: ep.placement.ConsumerNode(id),
		Epoch: version, Live: len(newEp.live), SparesDrained: drained,
	})
	fk := flight.KMemberRetire
	if kind == telemetry.MemberCrashed {
		fk = flight.KMemberCrash
	}
	// Control ring: multi-writer-safe; id is namespaced by FlightBase so
	// co-resident pools' membership events stay distinguishable.
	flight.RecordControl(fk, version, int32(fw.cfg.FlightBase+id), int32(ep.placement.ConsumerNode(id)))
	return nil
}

// Registry exposes the membership registry (read-only use: state queries
// in tests and telemetry).
func (fw *Framework[T]) Registry() *membership.Registry { return fw.reg }
