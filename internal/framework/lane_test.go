package framework_test

import (
	"testing"

	"salsa/internal/failpoint"
	"salsa/internal/framework"
)

func makeTasks(n int) []*task {
	ts := make([]*task, n)
	for i := range ts {
		ts[i] = &task{seq: i}
	}
	return ts
}

// TestLaneBuffersUntilFlush pins the visibility contract: lane-buffered
// tasks are in the producer's goroutine, not in the pool, until Flush.
func TestLaneBuffersUntilFlush(t *testing.T) {
	fw := newFW(t, 1, 1, 8, func(cfg *framework.Config[task]) { cfg.LaneSize = 8 })
	p, c := fw.Producer(0), fw.Consumer(0)
	tasks := makeTasks(3)
	for _, ts := range tasks {
		p.Put(ts)
	}
	if n := p.LaneLen(); n != 3 {
		t.Fatalf("LaneLen = %d after 3 buffered puts, want 3", n)
	}
	if _, ok := c.TryGet(); ok {
		t.Fatal("TryGet retrieved a task that was never flushed")
	}
	p.Flush()
	if n := p.LaneLen(); n != 0 {
		t.Fatalf("LaneLen = %d after Flush, want 0", n)
	}
	got := 0
	for {
		if _, ok := c.TryGet(); !ok {
			break
		}
		got++
	}
	if got != 3 {
		t.Fatalf("retrieved %d tasks after Flush, want 3", got)
	}
	ops := p.Ops()
	if ops.LaneFlushes != 1 {
		t.Errorf("LaneFlushes = %d, want 1 (the empty-lane Flush must not count)", ops.LaneFlushes)
	}
	if ops.LaneFlushSize.Count != 1 || ops.LaneFlushSize.SumNs != 3 {
		t.Errorf("LaneFlushSize = count %d sum %d, want count 1 sum 3",
			ops.LaneFlushSize.Count, ops.LaneFlushSize.SumNs)
	}
	p.Flush() // empty lane: must be a no-op, not a zero observation
	if ops := p.Ops(); ops.LaneFlushes != 1 {
		t.Errorf("empty Flush counted: LaneFlushes = %d", ops.LaneFlushes)
	}
}

// TestLaneAutoFlushOnFull: the put that finds the lane full publishes the
// buffered run and then buffers itself.
func TestLaneAutoFlushOnFull(t *testing.T) {
	fw := newFW(t, 1, 1, 8, func(cfg *framework.Config[task]) { cfg.LaneSize = 4 })
	p, c := fw.Producer(0), fw.Consumer(0)
	tasks := makeTasks(5)
	for _, ts := range tasks {
		p.Put(ts)
	}
	if n := p.LaneLen(); n != 1 {
		t.Fatalf("LaneLen = %d after overflowing a 4-lane with 5 puts, want 1", n)
	}
	got := 0
	for {
		if _, ok := c.TryGet(); !ok {
			break
		}
		got++
	}
	if got != 4 {
		t.Fatalf("retrieved %d tasks from the auto-flush, want 4", got)
	}
	ops := p.Ops()
	if ops.LaneFlushes != 1 || ops.LaneFlushSize.SumNs != 4 {
		t.Errorf("auto-flush census: flushes %d sum %d, want 1/4",
			ops.LaneFlushes, ops.LaneFlushSize.SumNs)
	}
}

// TestLaneFlushFailpoint: the flush window fires the catalogue site with
// the producer's id, between lane drain and chunk publish.
func TestLaneFlushFailpoint(t *testing.T) {
	if !failpoint.Compiled {
		t.Skip("failpoints compiled out")
	}
	fw := newFW(t, 2, 1, 8, func(cfg *framework.Config[task]) { cfg.LaneSize = 8 })
	p := fw.Producer(1)
	fired := 0
	failpoint.Set(failpoint.LaneFlushBeforePublish, func(_ failpoint.Site, id int) bool {
		fired++
		if id != 1 {
			t.Errorf("flush window reported producer %d, want 1", id)
		}
		return true // gate result must be ignored: the site is inject-only
	})
	defer failpoint.Reset()
	p.Put(makeTasks(1)[0])
	p.Flush()
	if fired != 1 {
		t.Fatalf("LaneFlushBeforePublish fired %d times, want 1", fired)
	}
	// The run must have been published even though the hook returned true.
	if tk, ok := fw.Consumer(0).TryGet(); !ok || tk == nil {
		t.Fatal("flush dropped the run when the inject-only hook returned true")
	}
}

// TestLaneSizeValidation: negative sizes are rejected at construction.
func TestLaneSizeValidation(t *testing.T) {
	shared := newFW(t, 1, 1, 8, nil) // just to reuse the factory pattern
	_ = shared
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("constructor panicked instead of returning an error: %v", r)
		}
	}()
	cfg := framework.Config[task]{Producers: 1, Consumers: 1}
	cfg.LaneSize = -1
	if _, err := framework.New(cfg); err == nil {
		t.Fatal("negative LaneSize accepted")
	}
}
