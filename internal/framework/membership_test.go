package framework_test

import (
	"sync"
	"testing"

	"salsa/internal/core"
	"salsa/internal/framework"
	"salsa/internal/membership"
	"salsa/internal/scpool"
	"salsa/internal/topology"
)

// newElasticFW builds a framework with headroom for maxConsumers ids; the
// SALSA family is sized to the capacity, as salsa.Config does it.
func newElasticFW(t *testing.T, producers, consumers, maxConsumers, chunk int) *framework.Framework[task] {
	t.Helper()
	shared, err := core.NewShared[task](core.Options{ChunkSize: chunk, Consumers: maxConsumers})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := framework.New(framework.Config[task]{
		Producers:    producers,
		Consumers:    consumers,
		MaxConsumers: maxConsumers,
		Placement:    topology.Place(topology.Paper32(), producers, consumers, topology.PlaceInterleaved),
		NewPool: func(owner, node, prods int) (scpool.SCPool[task], error) {
			return shared.NewPool(owner, node, prods)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestAddConsumerJoinsLiveSet(t *testing.T) {
	fw := newElasticFW(t, 1, 1, 4, 4)
	if got := fw.MembershipEpoch(); got != 0 {
		t.Fatalf("initial epoch = %d", got)
	}
	co, err := fw.AddConsumer()
	if err != nil {
		t.Fatalf("AddConsumer: %v", err)
	}
	if co.ID() != 1 {
		t.Fatalf("new consumer id = %d, want 1", co.ID())
	}
	if got := fw.MembershipEpoch(); got != 1 {
		t.Fatalf("epoch after join = %d, want 1", got)
	}
	if got := fw.LiveConsumers(); got != 2 {
		t.Fatalf("LiveConsumers = %d, want 2", got)
	}
	if got := fw.NumConsumers(); got != 2 {
		t.Fatalf("NumConsumers = %d, want 2", got)
	}

	// The new consumer participates fully: it can drain tasks the
	// producer routed anywhere, including ones inserted before the join.
	pr := fw.Producer(0)
	want := make(map[*task]bool)
	for i := 0; i < 40; i++ {
		tk := &task{seq: i}
		want[tk] = true
		pr.Put(tk)
	}
	for len(want) > 0 {
		tk, ok := co.Get()
		if !ok {
			t.Fatalf("Get reported empty with %d tasks outstanding", len(want))
		}
		if !want[tk] {
			t.Fatalf("task %d unknown or consumed twice", tk.seq)
		}
		delete(want, tk)
	}
	if _, ok := co.Get(); ok {
		t.Fatal("Get returned a task from a drained system")
	}
}

func TestAddConsumerCapacityExhausted(t *testing.T) {
	fw := newElasticFW(t, 1, 1, 2, 4)
	if _, err := fw.AddConsumer(); err != nil {
		t.Fatalf("AddConsumer within capacity: %v", err)
	}
	if _, err := fw.AddConsumer(); err == nil {
		t.Fatal("AddConsumer beyond MaxConsumers succeeded")
	}
}

func TestRetireConsumerReclaimsTasks(t *testing.T) {
	fw := newElasticFW(t, 1, 2, 2, 4)
	pr, victim, survivor := fw.Producer(0), fw.Consumer(0), fw.Consumer(1)

	// Fill both pools, then retire consumer 0 with tasks still queued.
	want := make(map[*task]bool)
	for i := 0; i < 60; i++ {
		tk := &task{seq: i}
		want[tk] = true
		pr.Put(tk)
	}
	if err := fw.RetireConsumer(victim.ID()); err != nil {
		t.Fatalf("RetireConsumer: %v", err)
	}
	if got := fw.LiveConsumers(); got != 1 {
		t.Fatalf("LiveConsumers after retire = %d, want 1", got)
	}
	if !fw.ConsumerDeparted(0) || fw.ConsumerDeparted(1) {
		t.Fatal("ConsumerDeparted flags wrong")
	}
	if !victim.Departed() {
		t.Fatal("retired handle not flagged departed")
	}

	// The survivor reclaims every task exactly once, then observes a
	// linearizable empty — which must account for the abandoned pool.
	for len(want) > 0 {
		tk, ok := survivor.Get()
		if !ok {
			t.Fatalf("Get reported empty with %d tasks outstanding", len(want))
		}
		if !want[tk] {
			t.Fatalf("task %d unknown or consumed twice", tk.seq)
		}
		delete(want, tk)
	}
	if _, ok := survivor.Get(); ok {
		t.Fatal("Get returned a task from a drained system")
	}

	// Producers no longer route to the abandoned pool...
	pr.Put(&task{seq: 1000})
	if tk, ok := survivor.TryGet(); !ok || tk.seq != 1000 {
		t.Fatalf("post-retire Put not retrievable by survivor (ok=%v)", ok)
	}
	// ...and the retired handle refuses to run.
	defer func() {
		if recover() == nil {
			t.Fatal("Get on a retired handle did not panic")
		}
	}()
	victim.Get()
}

func TestRetireDrainsSparesToSurvivor(t *testing.T) {
	chunk := 4
	shared, err := core.NewShared[task](core.Options{ChunkSize: chunk, Consumers: 3, InitialChunks: 5})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := framework.New(framework.Config[task]{
		Producers: 1, Consumers: 3,
		Placement: topology.Place(topology.Paper32(), 1, 3, topology.PlaceInterleaved),
		NewPool: func(owner, node, prods int) (scpool.SCPool[task], error) {
			return shared.NewPool(owner, node, prods)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RetireConsumer(2); err != nil {
		t.Fatalf("RetireConsumer: %v", err)
	}
	if got := fw.SparesDrained(); got != 5 {
		t.Fatalf("SparesDrained = %d, want 5", got)
	}
	if got := scpool.VisibleTasks[task](fw.Pool(2)); got != 0 {
		t.Fatalf("abandoned pool reports %d visible tasks", got)
	}
}

func TestLastLiveConsumerCannotRetire(t *testing.T) {
	fw := newElasticFW(t, 1, 1, 2, 4)
	if err := fw.RetireConsumer(0); err == nil {
		t.Fatal("retiring the last live consumer succeeded")
	}
	if err := fw.KillConsumer(0); err == nil {
		t.Fatal("killing the last live consumer succeeded")
	}
	if st := fw.Registry().State(0); st != membership.Live {
		t.Fatalf("consumer 0 state = %v after refused departures", st)
	}
}

func TestKillConsumerSurvivorsDrainEverything(t *testing.T) {
	fw := newElasticFW(t, 2, 3, 3, 4)
	pr0, pr1 := fw.Producer(0), fw.Producer(1)

	var mu sync.Mutex
	want := make(map[*task]bool)
	for i := 0; i < 90; i++ {
		tk := &task{seq: i}
		want[tk] = true
		if i%2 == 0 {
			pr0.Put(tk)
		} else {
			pr1.Put(tk)
		}
	}
	// Kill consumer 1 without any cooperation: it never ran, so it is
	// quiescent and no task may be lost.
	if err := fw.KillConsumer(1); err != nil {
		t.Fatalf("KillConsumer: %v", err)
	}
	if st := fw.Registry().State(1); st != membership.Crashed {
		t.Fatalf("killed consumer state = %v", st)
	}

	// Survivors 0 and 2 drain concurrently; every task exactly once.
	var wg sync.WaitGroup
	for _, id := range []int{0, 2} {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			co := fw.Consumer(id)
			for {
				tk, ok := co.Get()
				if !ok {
					return
				}
				mu.Lock()
				if !want[tk] {
					mu.Unlock()
					panic("task unknown or consumed twice")
				}
				delete(want, tk)
				mu.Unlock()
			}
		}(id)
	}
	wg.Wait()
	if len(want) != 0 {
		t.Fatalf("%d tasks lost after kill", len(want))
	}
}

func TestChurnAddRetireCycles(t *testing.T) {
	fw := newElasticFW(t, 1, 1, 8, 4)
	pr := fw.Producer(0)
	alive := []int{0}
	for cycle := 0; cycle < 7; cycle++ {
		co, err := fw.AddConsumer()
		if err != nil {
			t.Fatalf("cycle %d AddConsumer: %v", cycle, err)
		}
		alive = append(alive, co.ID())
		// Retire the older consumer, keeping exactly one live.
		if err := fw.RetireConsumer(alive[0]); err != nil {
			t.Fatalf("cycle %d RetireConsumer(%d): %v", cycle, alive[0], err)
		}
		alive = alive[1:]
		for i := 0; i < 10; i++ {
			pr.Put(&task{seq: cycle*10 + i})
		}
		got := 0
		for {
			if _, ok := co.Get(); !ok {
				break
			}
			got++
		}
		if got != 10 {
			t.Fatalf("cycle %d: drained %d tasks, want 10", cycle, got)
		}
	}
	if got := fw.MembershipEpoch(); got != 14 {
		t.Fatalf("epoch after 7 add+retire cycles = %d, want 14", got)
	}
	if got := fw.LiveConsumers(); got != 1 {
		t.Fatalf("LiveConsumers = %d, want 1", got)
	}
}
