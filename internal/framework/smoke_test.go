package framework_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"salsa/internal/core"
	"salsa/internal/framework"
	"salsa/internal/scpool"
	"salsa/internal/topology"
)

type task struct {
	producer int
	seq      int
}

func newSALSA(t *testing.T, producers, consumers, chunkSize int) *framework.Framework[task] {
	t.Helper()
	shared, err := core.NewShared[task](core.Options{
		ChunkSize: chunkSize,
		Consumers: consumers,
	})
	if err != nil {
		t.Fatalf("NewShared: %v", err)
	}
	fw, err := framework.New(framework.Config[task]{
		Producers: producers,
		Consumers: consumers,
		Placement: topology.Place(topology.Paper32(), producers, consumers, topology.PlaceInterleaved),
		NewPool: func(owner, node, prods int) (scpool.SCPool[task], error) {
			return shared.NewPool(owner, node, prods)
		},
	})
	if err != nil {
		t.Fatalf("framework.New: %v", err)
	}
	return fw
}

func TestSingleProducerSingleConsumerFIFOish(t *testing.T) {
	fw := newSALSA(t, 1, 1, 8)
	p, c := fw.Producer(0), fw.Consumer(0)
	const n = 100
	for i := 0; i < n; i++ {
		p.Put(&task{producer: 0, seq: i})
	}
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		tk, ok := c.Get()
		if !ok {
			t.Fatalf("Get %d returned empty", i)
		}
		if seen[tk.seq] {
			t.Fatalf("task %d returned twice", tk.seq)
		}
		seen[tk.seq] = true
	}
	if _, ok := c.Get(); ok {
		t.Fatalf("expected empty pool after draining")
	}
}

func TestEmptyPoolGetReturnsFalse(t *testing.T) {
	fw := newSALSA(t, 2, 2, 16)
	if _, ok := fw.Consumer(0).Get(); ok {
		t.Fatal("Get on a never-used pool should report empty")
	}
	if _, ok := fw.Consumer(1).Get(); ok {
		t.Fatal("Get on a never-used pool should report empty")
	}
}

func TestStealingDrainsForeignPool(t *testing.T) {
	// Producer 0's access list starts at some consumer; the OTHER
	// consumer must still be able to drain everything via stealing.
	fw := newSALSA(t, 1, 2, 4)
	p := fw.Producer(0)
	const n = 64
	for i := 0; i < n; i++ {
		p.Put(&task{seq: i})
	}
	// Use only consumer 1 — at least part of the tasks will be in
	// consumer 0's (or 1's) pool, so this exercises chunk stealing in
	// one direction or the other.
	c := fw.Consumer(1)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		tk, ok := c.Get()
		if !ok {
			t.Fatalf("Get %d reported empty with %d tasks outstanding", i, n-i)
		}
		if seen[tk.seq] {
			t.Fatalf("task %d returned twice", tk.seq)
		}
		seen[tk.seq] = true
	}
	if _, ok := c.Get(); ok {
		t.Fatal("expected empty after drain")
	}
}

func TestConcurrentUniqueAndComplete(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
	)
	fw := newSALSA(t, producers, consumers, 64)
	var producersDone atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := fw.Producer(id)
			for s := 0; s < perProd; s++ {
				p.Put(&task{producer: id, seq: s})
			}
		}(i)
	}

	results := make([][]*task, consumers)
	var cwg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			c := fw.Consumer(id)
			emptyStreak := 0
			for {
				tk, ok := c.Get()
				if ok {
					results[id] = append(results[id], tk)
					emptyStreak = 0
					continue
				}
				// Producers may still be running; only stop after
				// they are done AND the pool looks empty.
				emptyStreak++
				if emptyStreak > 2 && producersDone.Load() {
					return
				}
			}
		}(i)
	}
	go func() {
		wg.Wait()
		producersDone.Store(true)
	}()
	cwg.Wait()

	seen := make(map[task]bool)
	total := 0
	for _, res := range results {
		for _, tk := range res {
			if seen[*tk] {
				t.Fatalf("task %+v returned twice", *tk)
			}
			seen[*tk] = true
			total++
		}
	}
	if total != producers*perProd {
		t.Fatalf("lost tasks: got %d want %d", total, producers*perProd)
	}
}
