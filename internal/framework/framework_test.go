package framework_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salsa/internal/core"
	"salsa/internal/framework"
	"salsa/internal/scpool"
	"salsa/internal/topology"
)

func newFW(t *testing.T, producers, consumers, chunk int, mutate func(*framework.Config[task])) *framework.Framework[task] {
	t.Helper()
	shared, err := core.NewShared[task](core.Options{ChunkSize: chunk, Consumers: consumers})
	if err != nil {
		t.Fatal(err)
	}
	cfg := framework.Config[task]{
		Producers: producers,
		Consumers: consumers,
		Placement: topology.Place(topology.Paper32(), producers, consumers, topology.PlaceInterleaved),
		NewPool: func(owner, node, prods int) (scpool.SCPool[task], error) {
			return shared.NewPool(owner, node, prods)
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	fw, err := framework.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestConfigValidation(t *testing.T) {
	if _, err := framework.New(framework.Config[task]{Producers: 0, Consumers: 1}); err == nil {
		t.Error("Producers=0 accepted")
	}
	if _, err := framework.New(framework.Config[task]{Producers: 1, Consumers: 1}); err == nil {
		t.Error("missing factory accepted")
	}
}

func TestDefaultPlacementIsUMA(t *testing.T) {
	shared, _ := core.NewShared[task](core.Options{ChunkSize: 8, Consumers: 2})
	fw, err := framework.New(framework.Config[task]{
		Producers: 2, Consumers: 2,
		NewPool: func(owner, node, prods int) (scpool.SCPool[task], error) {
			return shared.NewPool(owner, node, prods)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Placement().Topo.NumNodes() != 1 {
		t.Errorf("default topology has %d nodes, want 1", fw.Placement().Topo.NumNodes())
	}
}

// TestProducerBasedBalancing: with a tiny chunk budget, a producer whose
// nearest consumer is saturated must divert to other pools rather than
// expand the nearest one.
func TestProducerBasedBalancing(t *testing.T) {
	const chunk = 4
	fw := newFW(t, 1, 4, chunk, nil)
	p := fw.Producer(0)
	// No consumer ever runs: chunk pools stay empty, so each put after
	// the first forced chunk tests the access-list walk. All inserts
	// must land *somewhere* without panicking, and force-expansions go
	// to the closest pool only.
	for i := 0; i < chunk*8; i++ {
		p.Put(&task{seq: i})
	}
	ops := p.Ops()
	if ops.Puts != chunk*8 {
		t.Fatalf("Puts = %d, want %d", ops.Puts, chunk*8)
	}
	// Without any consumption there are no spare chunks anywhere, so
	// every new chunk is a forced allocation on the closest pool, and
	// produce() failures must have been recorded on the way.
	if ops.ProduceFull == 0 {
		t.Error("no produce() failures recorded; balancing never engaged")
	}
	if ops.ForcePuts == 0 {
		t.Error("no forced inserts recorded")
	}
}

// TestBalancingFollowsConsumptionRate: a fast consumer recycles more chunks
// into its pool, so producers should direct more tasks at it (§1.5.4).
func TestBalancingFollowsConsumptionRate(t *testing.T) {
	const chunk = 8
	fw := newFW(t, 1, 2, chunk, nil)
	p := fw.Producer(0)
	fast := fw.Consumer(0)
	slowIdx := 1
	_ = slowIdx // consumer 1 never consumes

	counts := [2]int{}
	for round := 0; round < 200; round++ {
		p.Put(&task{seq: round})
		// Fast consumer drains immediately, recycling chunks into its
		// own pool.
		if tk, ok := fast.TryGet(); ok {
			_ = tk
			counts[0]++
		}
	}
	if counts[0] == 0 {
		t.Fatal("fast consumer never got a task")
	}
	// The fast consumer's pool must have absorbed the bulk of traffic.
	s := fw.Stats()
	if s.ProduceFull == 0 && s.ForcePuts > 10 {
		t.Errorf("producer kept forcing (%d) without balancing attempts", s.ForcePuts)
	}
}

// TestDisableBalancing pins all inserts to the first pool.
func TestDisableBalancing(t *testing.T) {
	fw := newFW(t, 1, 4, 4, func(c *framework.Config[task]) { c.DisableBalancing = true })
	p := fw.Producer(0)
	for i := 0; i < 64; i++ {
		p.Put(&task{seq: i})
	}
	// All tasks must be drainable from exactly one pool without steals:
	// find it by consuming with its owner.
	total := 0
	for ci := 0; ci < 4; ci++ {
		c := fw.Consumer(ci)
		for {
			if _, ok := c.TryGet(); !ok {
				break
			}
			total++
		}
		snap := c.Ops()
		if ci == 0 && snap.Steals > 0 {
			// Consumer 0 may legitimately steal if the producer's
			// nearest pool is another consumer's; what matters is
			// below: a single pool held everything.
			_ = snap
		}
	}
	if total != 64 {
		t.Fatalf("drained %d, want 64", total)
	}
	// Every chunk was force-expanded on the single target pool; no other
	// pool was even tried, so failures == forced expansions (one probe
	// each), never more.
	s := fw.Stats()
	if s.ProduceFull > s.ForcePuts {
		t.Errorf("ProduceFull=%d > ForcePuts=%d: producer probed other pools despite DisableBalancing",
			s.ProduceFull, s.ForcePuts)
	}
}

// TestCheckEmptyAdversarial reproduces Figure 1.3: a task bounces between
// pools while a consumer probes for emptiness; the probe must never return
// "empty" while a task is always present somewhere.
func TestCheckEmptyAdversarial(t *testing.T) {
	fw := newFW(t, 2, 2, 2, nil)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// The "bouncer": keeps exactly one task in flight, alternating the
	// pool it inserts to, consuming it back immediately.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := fw.Producer(0)
		c := fw.Consumer(0)
		i := 0
		for !stop.Load() {
			p.Put(&task{seq: i})
			for {
				if _, ok := c.TryGet(); ok {
					break
				}
			}
			i++
		}
	}()

	// The prober: consumer 1 calls Get. Every ⊥ answer must be
	// linearizable: since the bouncer holds the invariant "at most one
	// task, sometimes zero" — zero *is* reachable between Put and
	// TryGet, so ⊥ is legal; what we verify is that Get never *steals*
	// the bouncer's task and never wedges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := fw.Consumer(1)
		for !stop.Load() {
			if tk, ok := c.Get(); ok {
				// Legal: consumer 1 may win the race for the task.
				// Hand it back so the bouncer can finish its drain.
				fw.Producer(1).Put(tk)
			}
		}
	}()

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

// TestGetEmptyIsStable: after a full drain with no producers, every
// consumer's Get must report empty, repeatedly.
func TestGetEmptyIsStable(t *testing.T) {
	fw := newFW(t, 2, 3, 8, nil)
	for i := 0; i < 100; i++ {
		fw.Producer(i % 2).Put(&task{seq: i})
	}
	got := 0
	for ci := 0; ci < 3; ci++ {
		c := fw.Consumer(ci)
		for {
			if _, ok := c.Get(); !ok {
				break
			}
			got++
		}
	}
	if got != 100 {
		t.Fatalf("drained %d, want 100", got)
	}
	for round := 0; round < 5; round++ {
		for ci := 0; ci < 3; ci++ {
			if _, ok := fw.Consumer(ci).Get(); ok {
				t.Fatal("Get found a task in a drained system")
			}
		}
	}
}

// TestStalledConsumerDoesNotBlockOthers injects the paper's robustness
// scenario (§1.1): one consumer stalls forever while producers keep
// inserting; the remaining consumers must drain everything via balancing
// and stealing.
func TestStalledConsumerDoesNotBlockOthers(t *testing.T) {
	const total = 10000
	fw := newFW(t, 2, 4, 16, nil)
	// Consumer 0 is stalled: never calls Get.
	var wg sync.WaitGroup
	for pi := 0; pi < 2; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			p := fw.Producer(pi)
			for i := 0; i < total/2; i++ {
				p.Put(&task{producer: pi, seq: i})
			}
		}(pi)
	}
	var done atomic.Bool
	go func() { wg.Wait(); done.Store(true) }()

	var got atomic.Int64
	var cwg sync.WaitGroup
	for ci := 1; ci < 4; ci++ {
		cwg.Add(1)
		go func(ci int) {
			defer cwg.Done()
			c := fw.Consumer(ci)
			for {
				wasDone := done.Load()
				if _, ok := c.Get(); ok {
					got.Add(1)
					continue
				}
				if wasDone {
					return
				}
			}
		}(ci)
	}
	cwg.Wait()
	if got.Load() != total {
		t.Fatalf("live consumers drained %d of %d tasks around the stalled one", got.Load(), total)
	}
}

// TestGetWait blocks until a task arrives and honours stop.
func TestGetWait(t *testing.T) {
	fw := newFW(t, 1, 1, 8, nil)
	c := fw.Consumer(0)

	go func() {
		time.Sleep(20 * time.Millisecond)
		fw.Producer(0).Put(&task{seq: 1})
	}()
	tk, ok := c.GetWait(nil)
	if !ok || tk.seq != 1 {
		t.Fatalf("GetWait = %v,%v", tk, ok)
	}

	stop := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(stop)
	}()
	if _, ok := c.GetWait(stop); ok {
		t.Fatal("GetWait returned a task from an empty pool")
	}
}

// TestNonLinearizableEmpty returns ⊥ quickly without the protocol.
func TestNonLinearizableEmpty(t *testing.T) {
	fw := newFW(t, 1, 2, 8, func(c *framework.Config[task]) { c.NonLinearizableEmpty = true })
	if _, ok := fw.Consumer(0).Get(); ok {
		t.Fatal("empty pool returned a task")
	}
	fw.Producer(0).Put(&task{seq: 5})
	drained := false
	for ci := 0; ci < 2 && !drained; ci++ {
		if _, ok := fw.Consumer(ci).Get(); ok {
			drained = true
		}
	}
	if !drained {
		t.Fatal("task not retrievable in non-linearizable mode")
	}
}

// TestStatsPlumbing: framework-level aggregation covers both handles.
func TestStatsPlumbing(t *testing.T) {
	fw := newFW(t, 2, 2, 8, nil)
	fw.Producer(0).Put(&task{seq: 0})
	fw.Producer(1).Put(&task{seq: 1})
	c := fw.Consumer(0)
	for {
		if _, ok := c.Get(); !ok {
			break
		}
	}
	s := fw.Stats()
	if s.Puts != 2 || s.Gets != 2 {
		t.Fatalf("Puts/Gets = %d/%d, want 2/2", s.Puts, s.Gets)
	}
	if s.GetsEmpty == 0 {
		t.Error("final empty Get not recorded")
	}
}
