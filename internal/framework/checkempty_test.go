package framework_test

import (
	"testing"

	"salsa/internal/framework"
	"salsa/internal/scpool"
)

// fakePool is a scriptable SCPool for exercising the checkEmpty protocol
// in isolation: it reports emptiness and indicator state from programmed
// sequences instead of real data structures.
type fakePool struct {
	owner int

	// emptySeq is consumed one value per IsEmpty call; when exhausted,
	// the last value repeats.
	emptySeq []bool
	emptyAt  int

	// indicatorSeq likewise for CheckIndicator.
	indicatorSeq []bool
	indicatorAt  int

	setCalls   int
	emptyCalls int
	checkCalls int
}

func (f *fakePool) OwnerID() int                              { return f.owner }
func (f *fakePool) Produce(*scpool.ProducerState, *task) bool { return true }
func (f *fakePool) ProduceForce(*scpool.ProducerState, *task) {}
func (f *fakePool) Consume(*scpool.ConsumerState) *task       { return nil }
func (f *fakePool) Steal(*scpool.ConsumerState, scpool.SCPool[task]) *task {
	return nil
}

func (f *fakePool) IsEmpty() bool {
	f.emptyCalls++
	v := true
	if len(f.emptySeq) > 0 {
		i := f.emptyAt
		if i >= len(f.emptySeq) {
			i = len(f.emptySeq) - 1
		}
		v = f.emptySeq[i]
		f.emptyAt++
	}
	return v
}

func (f *fakePool) SetIndicator(int) { f.setCalls++ }

func (f *fakePool) CheckIndicator(int) bool {
	f.checkCalls++
	v := true
	if len(f.indicatorSeq) > 0 {
		i := f.indicatorAt
		if i >= len(f.indicatorSeq) {
			i = len(f.indicatorSeq) - 1
		}
		v = f.indicatorSeq[i]
		f.indicatorAt++
	}
	return v
}

func buildFakeFW(t *testing.T, consumers int, pools []*fakePool) *framework.Framework[task] {
	t.Helper()
	i := 0
	fw, err := framework.New(framework.Config[task]{
		Producers: 1,
		Consumers: consumers,
		NewPool: func(owner, node, prods int) (scpool.SCPool[task], error) {
			p := pools[i]
			p.owner = owner
			i++
			return p, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

// TestCheckEmptyRunsNRounds: a Get on an always-empty system must traverse
// every pool n times (n = number of consumers), planting the indicator on
// the first round only (Algorithm 2 lines 30–36).
func TestCheckEmptyRunsNRounds(t *testing.T) {
	const consumers = 3
	pools := []*fakePool{{}, {}, {}}
	fw := buildFakeFW(t, consumers, pools)

	if _, ok := fw.Consumer(0).Get(); ok {
		t.Fatal("fake pools are empty; Get returned a task")
	}
	for i, p := range pools {
		if p.setCalls != 1 {
			t.Errorf("pool %d: SetIndicator called %d times, want 1", i, p.setCalls)
		}
		if p.emptyCalls != consumers {
			t.Errorf("pool %d: IsEmpty called %d times, want %d", i, p.emptyCalls, consumers)
		}
		if p.checkCalls != consumers {
			t.Errorf("pool %d: CheckIndicator called %d times, want %d", i, p.checkCalls, consumers)
		}
	}
}

// TestCheckEmptyRestartsWhenIndicatorCleared: a cleared indicator means a
// possibly-emptying operation raced the probe; checkEmpty must fail and the
// Get loop must retry (we feed a task on the retry to let it finish).
func TestCheckEmptyRestartsWhenIndicatorCleared(t *testing.T) {
	// Pool 0's indicator reads false once (simulating a concurrent
	// steal clearing it), then true forever.
	p0 := &fakePool{indicatorSeq: []bool{false, true}}
	p1 := &fakePool{}
	fw := buildFakeFW(t, 2, []*fakePool{p0, p1})

	if _, ok := fw.Consumer(0).Get(); ok {
		t.Fatal("Get returned a task from fake pools")
	}
	// The first checkEmpty failed at p0's cleared indicator, so a second
	// full probe must have run: p0's indicator was planted twice.
	if p0.setCalls < 2 {
		t.Errorf("expected a re-probe after a cleared indicator; SetIndicator calls = %d", p0.setCalls)
	}
}

// TestCheckEmptyFailsFastOnVisibleTask: IsEmpty=false must abort the probe
// without consulting the remaining pools of that round.
func TestCheckEmptyFailsFastOnVisibleTask(t *testing.T) {
	// Pool 0 looks non-empty once (then empty), pool 1 always empty.
	p0 := &fakePool{emptySeq: []bool{false, true}}
	p1 := &fakePool{}
	fw := buildFakeFW(t, 2, []*fakePool{p0, p1})

	if _, ok := fw.Consumer(0).Get(); ok {
		t.Fatal("Get returned a task from fake pools")
	}
	// First probe aborted at p0 before reaching p1: p1 sees exactly the
	// rounds of the *second* (successful) probe.
	if p1.emptyCalls != 2 {
		t.Errorf("p1.IsEmpty called %d times, want 2 (second probe only)", p1.emptyCalls)
	}
}
