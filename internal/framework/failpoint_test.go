package framework_test

import (
	"testing"

	"salsa/internal/failpoint"
	"salsa/internal/membership"
	"salsa/internal/scpool"
)

// These tests script real KillConsumer calls from inside the pool's
// synchronization windows — the framework-level counterpart of the core
// failpoint tests: the whole membership machinery (registry, epochs,
// abandonment, spare draining) runs while the victim is mid-operation.

// TestFailpointKillConsumerMidStealExactlyOnce kills a thief through the
// membership layer while it sits between the ownership CAS and its
// replacement-node publish. The thief had taken nothing, so the survivors
// must recover every task exactly once — including the chunk stranded under
// the dead thief's id — and then certify a linearizable empty that spans
// the abandoned pool.
func TestFailpointKillConsumerMidStealExactlyOnce(t *testing.T) {
	const total = 90
	fw := newElasticFW(t, 1, 3, 3, 4)
	pr := fw.Producer(0)

	want := make(map[*task]bool)
	for i := 0; i < total; i++ {
		tk := &task{seq: i}
		want[tk] = true
		pr.Put(tk)
	}

	defer failpoint.Reset()
	killed := -1
	failpoint.Set(failpoint.MembershipKillMidSteal, func(_ failpoint.Site, id int) bool {
		if killed >= 0 {
			return false
		}
		if err := fw.KillConsumer(id); err != nil {
			return false
		}
		killed = id
		return true
	})

	// The single producer routes everything to its access-list head
	// (consumer 1's pool under this placement), so consumer 0's first Get
	// goes straight to stealing — and dies in the window. The handle must
	// soft-fail from then on.
	thief := fw.Consumer(0)
	for {
		tk, ok := thief.Get()
		if !ok {
			break
		}
		if !want[tk] {
			t.Fatalf("task %d unknown or consumed twice", tk.seq)
		}
		delete(want, tk)
	}
	if killed != 0 {
		t.Fatalf("mid-steal kill hit consumer %d, want 0", killed)
	}
	if st := fw.Registry().State(killed); st != membership.Crashed {
		t.Fatalf("killed consumer state = %v, want Crashed", st)
	}
	if !thief.Departed() {
		t.Fatal("killed handle not flagged departed")
	}
	// The loop above exited through the soft-fail path: Get on a killed
	// handle reports empty instead of panicking the way a retired handle
	// does — the crash model's "the goroutine just stops" semantics.

	// Survivors drain everything, stranded chunk included; Get returning
	// !ok is checkEmpty's linearizable ⊥ over all pools, dead one included.
	for _, id := range []int{1, 2} {
		co := fw.Consumer(id)
		for {
			tk, ok := co.Get()
			if !ok {
				break
			}
			if !want[tk] {
				t.Fatalf("task %d unknown or consumed twice", tk.seq)
			}
			delete(want, tk)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d tasks lost after mid-steal kill (zero-loss crash)", len(want))
	}

	// The abandoned pool's empty-indicator slot stays raised once the
	// system is quiescent: emptiness scans must not disturb it, or
	// checkEmpty could never finish a round over the dead consumer's pool.
	pool := fw.Pool(killed)
	pool.SetIndicator(0)
	if !pool.IsEmpty() {
		t.Fatal("dead thief's pool still holds visible tasks")
	}
	if got := scpool.VisibleTasks[task](pool); got != 0 {
		t.Fatalf("dead thief's pool reports %d visible tasks", got)
	}
	if !pool.CheckIndicator(0) {
		t.Fatal("abandoned pool's indicator slot did not stay raised")
	}
}

// TestFailpointKillConsumerMidConsumeLosesOnlyAnnouncedSlot kills the owner
// through the membership layer inside the announce-to-take window. Exactly
// the one announced slot is forfeit (the paper's crash model); everything
// else must surface exactly once at the survivor.
func TestFailpointKillConsumerMidConsumeLosesOnlyAnnouncedSlot(t *testing.T) {
	const total = 60
	fw := newElasticFW(t, 1, 2, 2, 4)
	pr := fw.Producer(0)

	want := make(map[*task]bool)
	for i := 0; i < total; i++ {
		tk := &task{seq: i}
		want[tk] = true
		pr.Put(tk)
	}

	defer failpoint.Reset()
	killed := -1
	failpoint.Set(failpoint.ConsumeAfterAnnounce, func(_ failpoint.Site, id int) bool {
		if killed >= 0 {
			return false
		}
		if err := fw.KillConsumer(id); err != nil {
			return false
		}
		killed = id
		return true
	})

	// The victim keeps draining until its handle soft-fails: a killed
	// consumer's Get returns whatever its final in-flight pass found and
	// then reports empty forever.
	victim := fw.Consumer(0)
	for {
		tk, ok := victim.Get()
		if !ok {
			break
		}
		if !want[tk] {
			t.Fatalf("task %d unknown or consumed twice", tk.seq)
		}
		delete(want, tk)
	}
	if killed != 0 {
		t.Fatalf("mid-consume kill hit consumer %d, want 0", killed)
	}
	if !victim.Departed() {
		t.Fatal("killed handle not flagged departed")
	}

	survivor := fw.Consumer(1)
	for {
		tk, ok := survivor.Get()
		if !ok {
			break
		}
		if !want[tk] {
			t.Fatalf("task %d unknown or consumed twice", tk.seq)
		}
		delete(want, tk)
	}
	// The kill fired after an announce: that single slot is gone by
	// design, and nothing else may be.
	if len(want) != 1 {
		t.Fatalf("%d tasks missing after mid-consume kill, want exactly the announced slot (1)", len(want))
	}

	pool := fw.Pool(killed)
	pool.SetIndicator(survivor.ID())
	if !pool.IsEmpty() {
		t.Fatal("dead owner's pool still holds visible tasks")
	}
	if !pool.CheckIndicator(survivor.ID()) {
		t.Fatal("abandoned pool's indicator slot did not stay raised")
	}
}
