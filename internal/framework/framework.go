// Package framework implements the paper's management policy (§1.4,
// Algorithm 2): the component that operates a set of SCPools, routing
// producer requests and initiating stealing according to NUMA-aware access
// lists, independent of which SCPool implementation is underneath.
//
// The policy is:
//
//   - Access lists. Every producer and consumer is given the list of all
//     consumers sorted by distance from its core (internal/topology).
//   - Producer policy. put() tries produce() on each pool in access-list
//     order; produce() fails when the target consumer has no spare chunks
//     (it is overloaded), and if every pool is full, produceForce() expands
//     the closest pool. This is producer-based balancing (§1.5.4).
//   - Consumer policy. get() consumes from the consumer's own pool, then
//     tries to steal along its access list, and gives up only after the
//     linearizable checkEmpty() protocol (§1.5.5) confirms a moment of
//     global emptiness.
//
// If the SCPools are lock-free, the framework preserves lock-freedom at the
// system level.
package framework

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"salsa/internal/backoff"
	"salsa/internal/failpoint"
	"salsa/internal/flight"
	"salsa/internal/lane"
	"salsa/internal/membership"
	"salsa/internal/scpool"
	"salsa/internal/stats"
	"salsa/internal/telemetry"
	"salsa/internal/topology"
)

// ErrKilled is returned by GetContext when the consumer was declared
// crashed (KillConsumer) while the call was in flight or before it.
var ErrKilled = errors.New("framework: consumer killed")

// PoolFactory builds the SCPool owned by consumer ownerID on NUMA node
// ownerNode, with producer lists for `producers` producers.
type PoolFactory[T any] func(ownerID, ownerNode, producers int) (scpool.SCPool[T], error)

// Config describes a framework instance.
type Config[T any] struct {
	// Producers and Consumers are the thread counts. Every producer and
	// consumer gets a dedicated handle that must be used by a single
	// goroutine.
	Producers int
	Consumers int

	// MaxConsumers bounds the total number of consumers ever registered,
	// including departed ones: elastic membership (AddConsumer) assigns
	// monotonic ids that are never reused, and substrate capacity
	// (empty-indicator sizes, owner-word id ranges) is fixed at
	// construction. Zero means Consumers — a fixed-membership pool. The
	// SCPool factory must build pools sized for MaxConsumers ids.
	MaxConsumers int

	// Placement maps threads to cores/nodes and derives access lists.
	// Nil means a UMA machine with Producers+Consumers cores.
	Placement *topology.Placement

	// NewPool builds the SCPool implementation (SALSA, SALSA+CAS,
	// ConcBag, WS-MSQ, WS-LIFO, ...).
	NewPool PoolFactory[T]

	// DisableBalancing reproduces the Figure 1.6 ablation: producers
	// ignore produce() failures and always insert into the first pool on
	// their access list (forcing expansion when it is full).
	DisableBalancing bool

	// NonLinearizableEmpty makes Get return ⊥ after a single fruitless
	// traversal instead of running the checkEmpty protocol — the
	// configuration the paper benchmarked (§1.6.2). Correct programs
	// that rely on ⊥ meaning "empty at some instant" must keep this
	// false.
	NonLinearizableEmpty bool

	// StealOrder selects how a consumer iterates victims; the paper
	// leaves the policy open (§1.4 "subject for engineering
	// optimizations" and found it worth 53% for ConcBag, §1.6.3).
	StealOrder StealOrder

	// Tracer, when non-nil, receives telemetry events (steals, chunk
	// transfers, checkEmpty rounds, produce pressure) from every handle.
	// Nil disables emission at the cost of one predictable branch per
	// site.
	Tracer telemetry.Tracer

	// Latency enables wall-clock sampling of Put/Get/steal operations
	// into the per-handle histograms (stats.Ops.PutLatency & co.). Off
	// by default: sampling adds two time.Now() calls per operation,
	// which the paper's microbenchmark regime would notice.
	Latency bool

	// FlightBase offsets the flight-recorder actor ids of every handle:
	// producer/consumer i records as actor FlightBase+i. The recorder is
	// process-global and its per-actor rings are single-writer, so when
	// several pools share one process each must claim a disjoint id range.
	// Zero (the default) is correct for a single pool.
	FlightBase int

	// LaneSize, when positive, gives every producer handle an SPSC
	// front lane of that many tasks (rounded up to a power of two):
	// Put buffers into the lane and publishes whole runs through the
	// batch produce path when the lane fills or Producer.Flush is
	// called. Buffered tasks are INVISIBLE to consumers and to the
	// checkEmpty protocol until flushed — Put's pool-visibility point
	// moves from the call to the flush. Only Put uses the lane: the
	// batch paths (PutBatch, TryPutBatch) are already amortized and
	// publish immediately, and TryPut's saturation contract requires an
	// immediate answer. Zero disables lanes (the default, and the
	// paper's semantics).
	LaneSize int
}

// StealOrder is a victim-iteration policy for steal attempts.
type StealOrder int

const (
	// StealNearestFirst walks the NUMA access list in order — the
	// paper's policy: steals stay on-node when possible.
	StealNearestFirst StealOrder = iota
	// StealRoundRobin rotates the starting victim on every traversal,
	// spreading contention across victims at the cost of locality.
	StealRoundRobin
	// StealRandom picks a pseudo-random starting victim per traversal
	// (xorshift; no locks, no global rng).
	StealRandom
)

// Framework wires pools, producers and consumers together.
type Framework[T any] struct {
	cfg Config[T]
	reg *membership.Registry

	// epoch is the atomically published membership view (pools, access
	// lists, placement). Every hot-path operation loads it exactly once;
	// membership changes build a new epoch under mu and swap the pointer.
	epoch atomic.Pointer[epoch[T]]

	// mu serializes membership changes and guards the handle registries
	// below. Hot paths never take it.
	mu        sync.Mutex
	producers []*Producer[T]
	consumers []*Consumer[T] // by id; departed handles remain, flagged

	// sparesDrained counts spare chunks moved out of departing pools
	// into survivors (telemetry; written only under mu).
	sparesDrained atomic.Int64
}

// New validates cfg, builds one SCPool per consumer and pre-wires all
// handles and access lists.
func New[T any](cfg Config[T]) (*Framework[T], error) {
	if cfg.Producers <= 0 || cfg.Consumers <= 0 {
		return nil, fmt.Errorf("framework: need at least one producer and one consumer, got %d/%d",
			cfg.Producers, cfg.Consumers)
	}
	if cfg.MaxConsumers == 0 {
		cfg.MaxConsumers = cfg.Consumers
	}
	if cfg.MaxConsumers < cfg.Consumers {
		return nil, fmt.Errorf("framework: MaxConsumers %d below Consumers %d",
			cfg.MaxConsumers, cfg.Consumers)
	}
	if cfg.NewPool == nil {
		return nil, fmt.Errorf("framework: NewPool factory is required")
	}
	if cfg.LaneSize < 0 {
		return nil, fmt.Errorf("framework: LaneSize must be non-negative, got %d", cfg.LaneSize)
	}
	pl := cfg.Placement
	if pl == nil {
		pl = topology.Place(topology.UMA(cfg.Producers+cfg.Consumers),
			cfg.Producers, cfg.Consumers, topology.PlaceInterleaved)
	}
	reg, err := membership.NewRegistry(cfg.Consumers, cfg.MaxConsumers)
	if err != nil {
		return nil, fmt.Errorf("framework: %w", err)
	}
	fw := &Framework[T]{cfg: cfg, reg: reg}

	pools := make([]scpool.SCPool[T], cfg.Consumers)
	for i := 0; i < cfg.Consumers; i++ {
		p, err := cfg.NewPool(i, pl.ConsumerNode(i), cfg.Producers)
		if err != nil {
			return nil, fmt.Errorf("framework: building pool %d: %w", i, err)
		}
		if p.OwnerID() != i {
			return nil, fmt.Errorf("framework: pool %d reports owner %d", i, p.OwnerID())
		}
		pools[i] = p
	}

	fw.producers = make([]*Producer[T], cfg.Producers)
	for i := 0; i < cfg.Producers; i++ {
		pr := &Producer[T]{fw: fw}
		pr.state.ID = i
		pr.state.FID = cfg.FlightBase + i
		pr.state.Node = pl.ProducerNode(i)
		pr.state.Tracer = cfg.Tracer
		if cfg.LaneSize > 0 {
			pr.lane = lane.New[T](cfg.LaneSize)
			pr.laneBuf = make([]*T, pr.lane.Cap())
		}
		fw.producers[i] = pr
	}

	fw.consumers = make([]*Consumer[T], cfg.Consumers)
	for i := 0; i < cfg.Consumers; i++ {
		co := &Consumer[T]{fw: fw, myPool: pools[i]}
		co.state.ID = i
		co.state.FID = cfg.FlightBase + i
		co.state.Node = pl.ConsumerNode(i)
		co.state.Tracer = cfg.Tracer
		fw.consumers[i] = co
	}
	fw.buildEpoch(reg.Epoch(), pl, pools, make([]bool, cfg.Consumers))
	return fw, nil
}

// Producer returns producer i's handle. Each handle must be driven by one
// goroutine at a time.
func (fw *Framework[T]) Producer(i int) *Producer[T] { return fw.producers[i] }

// Consumer returns consumer i's handle (including departed consumers').
// Each handle must be driven by one goroutine at a time.
func (fw *Framework[T]) Consumer(i int) *Consumer[T] {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.consumers[i]
}

// Pool returns consumer i's SCPool (for tests and diagnostics).
func (fw *Framework[T]) Pool(i int) scpool.SCPool[T] { return fw.epoch.Load().pools[i] }

// NumProducers returns the configured producer count.
func (fw *Framework[T]) NumProducers() int { return len(fw.producers) }

// NumConsumers returns the number of consumers ever registered, departed
// included (ids 0..NumConsumers-1 are all valid handle indices). See
// LiveConsumers for the live count.
func (fw *Framework[T]) NumConsumers() int { return len(fw.epoch.Load().pools) }

// Placement returns the placement of the current membership epoch.
func (fw *Framework[T]) Placement() *topology.Placement { return fw.epoch.Load().placement }

// Stats aggregates the operation counters of every handle, departed
// consumers included (their counts record work done while live).
func (fw *Framework[T]) Stats() stats.Snapshot {
	fw.mu.Lock()
	consumers := fw.consumers[:len(fw.consumers):len(fw.consumers)]
	fw.mu.Unlock()
	var total stats.Snapshot
	for _, p := range fw.producers {
		total.Add(p.state.Ops.Snapshot())
	}
	for _, c := range consumers {
		total.Add(c.state.Ops.Snapshot())
	}
	return total
}

// Producer inserts tasks according to the producer policy. The access list
// is read from the current membership epoch on every call (one atomic
// load), so producers fail over to the surviving pools the moment a
// consumer departs and reach new pools the moment one joins.
type Producer[T any] struct {
	fw    *Framework[T]
	state scpool.ProducerState

	// lane is the optional SPSC front buffer (Config.LaneSize); nil
	// when lanes are off. laneBuf is the preallocated flush scratch —
	// runs drain into it and go out through putBatch, so a steady-state
	// flush allocates nothing.
	lane    *lane.Ring[T]
	laneBuf []*T
}

// Put inserts t (Algorithm 2's put()): produce() along the access list,
// produceForce() on the closest pool as last resort. t must be non-nil.
//
// With Config.LaneSize > 0 the task is instead buffered in this handle's
// SPSC lane and published — together with every other buffered task — when
// the lane fills or Flush is called; see Config.LaneSize for the
// visibility contract.
func (p *Producer[T]) Put(t *T) {
	if p.lane != nil {
		// Lane path: a push is two inlined atomic ops on memory owned
		// by this core. The flush amortizes the whole produce path
		// (epoch load, access-list walk, chunk bookkeeping) over the
		// run. Latency sampling applies to the flush, where the pool
		// work actually happens.
		if p.lane.Push(t) {
			return
		}
		p.Flush()
		p.lane.Push(t) // cannot fail: the lane was just drained
		return
	}
	if !p.fw.cfg.Latency { // fast path: one predictable branch
		p.put(t)
		return
	}
	start := time.Now()
	p.put(t)
	p.state.Ops.PutLatency.ObserveSince(start)
}

// Flush publishes every task buffered in this handle's lane into the pool
// (no-op when lanes are off or the lane is empty). Producers using lanes
// must Flush before relying on their tasks being retrievable — e.g. before
// blocking on downstream results, and before the handle goes quiet.
func (p *Producer[T]) Flush() {
	if p.lane == nil {
		return
	}
	n := p.lane.PopRun(p.laneBuf)
	if n == 0 {
		return
	}
	// The run now exists only in laneBuf: invisible to the lane and to
	// every pool. This is the flush's synchronization window (Armed
	// guard spelled at the site so a disarmed run pays one load, not a
	// CALL — failpoint docs).
	if failpoint.Compiled && failpoint.Armed.Load() != 0 {
		failpoint.Inject(failpoint.LaneFlushBeforePublish, p.state.ID)
	}
	// Call-free single-writer increment (stats.Counter.V docs).
	p.state.Ops.LaneFlushes.V.Store(p.state.Ops.LaneFlushes.V.Load() + 1)
	p.state.Ops.LaneFlushSize.Observe(int64(n))
	if !p.fw.cfg.Latency {
		p.putBatch(p.laneBuf[:n])
	} else {
		start := time.Now()
		p.putBatch(p.laneBuf[:n])
		p.state.Ops.PutLatency.ObserveSince(start)
	}
	// Drop the scratch references: the pool owns the run now, and a
	// retained pointer would keep a long-consumed task reachable.
	for i := 0; i < n; i++ {
		p.laneBuf[i] = nil
	}
}

// LaneLen reports how many tasks are buffered in this handle's lane (0
// when lanes are off) — diagnostic insight for tests and the doctor.
func (p *Producer[T]) LaneLen() int {
	if p.lane == nil {
		return 0
	}
	return p.lane.Len()
}

func (p *Producer[T]) put(t *T) {
	tr := p.state.Tracer
	access := p.fw.epoch.Load().prodAccess[p.state.ID]
	if p.fw.cfg.DisableBalancing {
		if !access[0].Produce(&p.state, t) {
			if tr != nil {
				tr.OnProduceFail(telemetry.ProduceEvent{
					Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
				tr.OnForcePut(telemetry.ProduceEvent{
					Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
			}
			access[0].ProduceForce(&p.state, t)
		}
		return
	}
	for _, pool := range access {
		if pool.Produce(&p.state, t) {
			return
		}
		if tr != nil {
			tr.OnProduceFail(telemetry.ProduceEvent{
				Producer: p.state.ID, Node: p.state.Node, Pool: pool.OwnerID()})
		}
	}
	if tr != nil {
		tr.OnForcePut(telemetry.ProduceEvent{
			Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
	}
	// The forced insert may land in a pool abandoned after the epoch was
	// loaded; that is safe — abandoned pools remain steal victims and
	// emptiness-scan subjects forever, so the straggler is reclaimed.
	access[0].ProduceForce(&p.state, t)
}

// PutBatch inserts every task of ts, amortizing the access-list walk (and,
// on batch-capable pools, the per-task synchronization) across the batch:
// each pool on the access list is offered the whole remainder, a short
// count is that pool's overload signal, and whatever no pool accepts is
// force-inserted into the closest pool — exactly the producer-based
// balancing of put(), applied to runs instead of single tasks. All tasks
// in ts must be non-nil. With Latency enabled the whole call is sampled as
// one PutLatency observation (batches are the unit of work here).
func (p *Producer[T]) PutBatch(ts []*T) {
	if len(ts) == 0 {
		return
	}
	// Call-free single-writer increment (stats.Counter.V docs).
	p.state.Ops.PutBatches.V.Store(p.state.Ops.PutBatches.V.Load() + 1)
	p.state.Ops.PutBatchSize.Observe(int64(len(ts)))
	if !p.fw.cfg.Latency {
		p.putBatch(ts)
		return
	}
	start := time.Now()
	p.putBatch(ts)
	p.state.Ops.PutLatency.ObserveSince(start)
}

func (p *Producer[T]) putBatch(ts []*T) {
	tr := p.state.Tracer
	access := p.fw.epoch.Load().prodAccess[p.state.ID]
	if p.fw.cfg.DisableBalancing {
		n := scpool.ProduceBatch(access[0], &p.state, ts)
		if n < len(ts) {
			if tr != nil {
				tr.OnProduceFail(telemetry.ProduceEvent{
					Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
				tr.OnForcePut(telemetry.ProduceEvent{
					Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
			}
			for _, t := range ts[n:] {
				access[0].ProduceForce(&p.state, t)
			}
		}
		return
	}
	rem := ts
	for _, pool := range access {
		n := scpool.ProduceBatch(pool, &p.state, rem)
		rem = rem[n:]
		if len(rem) == 0 {
			return
		}
		if tr != nil {
			tr.OnProduceFail(telemetry.ProduceEvent{
				Producer: p.state.ID, Node: p.state.Node, Pool: pool.OwnerID()})
		}
	}
	if tr != nil {
		tr.OnForcePut(telemetry.ProduceEvent{
			Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
	}
	for _, t := range rem {
		access[0].ProduceForce(&p.state, t)
	}
}

// TryPut inserts t without the produceForce escape hatch: the access list is
// walked exactly as in put(), but when every pool refuses (chunk pools
// exhausted everywhere the producer may reach) the task is rejected instead
// of force-expanding the closest pool. This is the typed backpressure path —
// the caller keeps ownership of t and decides whether to retry, shed, or
// block. Rejections are counted in SaturatedPuts.
func (p *Producer[T]) TryPut(t *T) bool {
	tr := p.state.Tracer
	access := p.fw.epoch.Load().prodAccess[p.state.ID]
	if p.fw.cfg.DisableBalancing {
		if access[0].Produce(&p.state, t) {
			return true
		}
		if tr != nil {
			tr.OnProduceFail(telemetry.ProduceEvent{
				Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
		}
		p.state.Ops.SaturatedPuts.Inc()
		return false
	}
	for _, pool := range access {
		if pool.Produce(&p.state, t) {
			return true
		}
		if tr != nil {
			tr.OnProduceFail(telemetry.ProduceEvent{
				Producer: p.state.ID, Node: p.state.Node, Pool: pool.OwnerID()})
		}
	}
	p.state.Ops.SaturatedPuts.Inc()
	return false
}

// TryPutBatch inserts a prefix of ts, walking the access list like
// putBatch() but never force-expanding: it returns how many tasks were
// accepted (0 ≤ n ≤ len(ts)); tasks ts[n:] remain owned by the caller. A
// short return is the saturation signal and is counted in SaturatedPuts.
func (p *Producer[T]) TryPutBatch(ts []*T) int {
	if len(ts) == 0 {
		return 0
	}
	tr := p.state.Tracer
	access := p.fw.epoch.Load().prodAccess[p.state.ID]
	if p.fw.cfg.DisableBalancing {
		n := scpool.ProduceBatch(access[0], &p.state, ts)
		if n < len(ts) {
			if tr != nil {
				tr.OnProduceFail(telemetry.ProduceEvent{
					Producer: p.state.ID, Node: p.state.Node, Pool: access[0].OwnerID()})
			}
			p.state.Ops.SaturatedPuts.Inc()
		}
		return n
	}
	rem := ts
	for _, pool := range access {
		n := scpool.ProduceBatch(pool, &p.state, rem)
		rem = rem[n:]
		if len(rem) == 0 {
			return len(ts)
		}
		if tr != nil {
			tr.OnProduceFail(telemetry.ProduceEvent{
				Producer: p.state.ID, Node: p.state.Node, Pool: pool.OwnerID()})
		}
	}
	p.state.Ops.SaturatedPuts.Inc()
	return len(ts) - len(rem)
}

// Ops returns this producer's operation counters.
func (p *Producer[T]) Ops() stats.Snapshot { return p.state.Ops.Snapshot() }

// ID returns the producer id.
func (p *Producer[T]) ID() int { return p.state.ID }

// Node returns the NUMA node the producer is placed on.
func (p *Producer[T]) Node() int { return p.state.Node }

// Consumer retrieves tasks according to the consumer policy.
type Consumer[T any] struct {
	fw     *Framework[T]
	state  scpool.ConsumerState
	myPool scpool.SCPool[T]

	// ep/victims cache the membership view this handle last saw. The
	// victim list is rebuilt (handle-locally, no locks) whenever the
	// framework's epoch pointer moves; between epochs the hot path pays
	// one atomic load and one pointer compare. Victims include abandoned
	// pools — that is how survivors reclaim a departed consumer's tasks.
	ep      *epoch[T]
	victims []scpool.SCPool[T]

	// departed is set when this consumer retires or is killed. Using a
	// retired handle panics (a bug, not a race to lose tasks on); a
	// *killed* handle instead soft-fails — killed is set first, and the
	// Get family returns empty. The distinction matters because a kill
	// can fire from inside the victim's own retrieval (a failpoint in a
	// steal window calling KillConsumer): the in-flight call must be
	// able to unwind through its retry loop and report empty, not panic
	// out of the middle of the data plane.
	departed atomic.Bool
	killed   atomic.Bool

	// steal-order state (single-owner, like the handle itself)
	rrNext int
	rng    uint64
}

// refresh returns the current epoch, rebuilding the cached victim list
// when membership changed since this handle last looked.
func (c *Consumer[T]) refresh() *epoch[T] {
	ep := c.fw.epoch.Load()
	if ep != c.ep {
		order := ep.placement.ConsumerAccessList(c.state.ID) // self first
		victims := make([]scpool.SCPool[T], 0, len(order)-1)
		for _, id := range order {
			if id != c.state.ID {
				victims = append(victims, ep.pools[id])
			}
		}
		c.victims = victims
		c.ep = ep
	}
	return ep
}

func (c *Consumer[T]) checkLive() {
	if c.departed.Load() && !c.killed.Load() {
		panic(fmt.Sprintf("framework: consumer %d handle used after retirement", c.state.ID))
	}
}

// Get retrieves a task (Algorithm 2's get()). It returns ok=false only
// when the system was observed empty — linearizably so unless the framework
// was configured with NonLinearizableEmpty.
func (c *Consumer[T]) Get() (*T, bool) {
	c.checkLive()
	if !c.fw.cfg.Latency { // fast path: one predictable branch
		return c.get()
	}
	start := time.Now()
	t, ok := c.get()
	if ok {
		// Only successful retrievals are sampled, so spin-polling an
		// empty pool (where Get runs the full emptiness protocol every
		// call) does not drown the histogram in empty-pass latencies.
		c.state.Ops.GetLatency.ObserveSince(start)
	}
	return t, ok
}

func (c *Consumer[T]) get() (*T, bool) {
	// The first pass runs without a watchdog marker: a single
	// consume-then-steal traversal is bounded straight-line code that
	// cannot stall, so the common found-a-task case skips the BeginOp /
	// EndOp stores entirely. Only a retrieval that enters the retry loop
	// below — where checkEmpty refutation can spin — marks itself.
	if t, ok := c.tryOnce(); ok {
		return t, true
	}
	// YieldOnly: Get is not a blocking wait — it retries only while
	// checkEmpty refutes emptiness — so the backoff escalates to yields
	// (fixing the GOMAXPROCS=1 livelock where a hot spinner monopolizes
	// the only P against the in-flight operation it waits on) but never
	// to timed sleeps: parking here would give a nominally non-sleeping
	// emptiness probe millisecond latency spikes under contention. The
	// explicitly blocking GetWait/GetContext paths park.
	bo := backoff.Backoff{YieldOnly: true}
	flight.BeginOp(c.state.FID)
	defer flight.EndOp(c.state.FID)
	for {
		if c.killed.Load() {
			return nil, false // crashed mid-retrieval: unwind as empty
		}
		if c.fw.cfg.NonLinearizableEmpty || c.checkEmpty() {
			c.state.Ops.GetsEmpty.Inc()
			flight.RecordC(c.state.FID, flight.KGetEmpty, 0, 0, 0)
			return nil, false
		}
		bo.Pause()
		if t, ok := c.tryOnce(); ok {
			return t, true
		}
	}
}

// TryGet performs a single consume-then-steal traversal without the
// emptiness protocol. A false result means "found nothing this pass", not
// "the system was empty". Latency sampling records only successful passes,
// so spin-polling an empty pool does not drown the Get histogram.
func (c *Consumer[T]) TryGet() (*T, bool) {
	c.checkLive()
	if !c.fw.cfg.Latency {
		return c.tryOnce()
	}
	start := time.Now()
	t, ok := c.tryOnce()
	if ok {
		c.state.Ops.GetLatency.ObserveSince(start)
	}
	return t, ok
}

// GetWait retrieves a task, waiting through empty periods with bounded
// spin→yield→sleep backoff until a task arrives or stop is closed. A parked
// waiter wakes within the backoff's max sleep (1ms) of stop closing.
func (c *Consumer[T]) GetWait(stop <-chan struct{}) (*T, bool) {
	c.checkLive()
	if t, ok := c.tryOnce(); ok {
		return t, true // bounded first pass: no watchdog marker (see get)
	}
	var bo backoff.Backoff
	flight.BeginOp(c.state.FID)
	defer flight.EndOp(c.state.FID)
	for {
		if c.killed.Load() {
			return nil, false // crashed mid-retrieval: unwind as empty
		}
		select {
		case <-stop:
			return nil, false
		default:
		}
		if bo.Pause() {
			c.state.Ops.Parks.Inc()
			flight.RecordC(c.state.FID, flight.KPark, 0, 0, 0)
		}
		if t, ok := c.tryOnce(); ok {
			return t, true
		}
	}
}

// GetContext retrieves a task, waiting like GetWait until one arrives or
// ctx is cancelled (its deadline counts). Returns ctx.Err() on
// cancellation and ErrKilled if the consumer is declared crashed while
// waiting. A parked waiter observes cancellation within the backoff's max
// sleep (1ms).
func (c *Consumer[T]) GetContext(ctx context.Context) (*T, error) {
	c.checkLive()
	if t, ok := c.tryOnce(); ok {
		return t, nil // bounded first pass: no watchdog marker (see get)
	}
	var bo backoff.Backoff
	flight.BeginOp(c.state.FID)
	defer flight.EndOp(c.state.FID)
	for {
		if c.killed.Load() {
			return nil, ErrKilled
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if bo.Pause() {
			c.state.Ops.Parks.Inc()
			flight.RecordC(c.state.FID, flight.KPark, 0, 0, 0)
		}
		if t, ok := c.tryOnce(); ok {
			return t, nil
		}
	}
}

func (c *Consumer[T]) tryOnce() (*T, bool) {
	c.refresh()
	// Call-free single-writer increments (stats.Counter.V docs): this
	// method is generic, so even a trivial Inc() would be an un-inlined
	// CALL per retrieval.
	if t := c.myPool.Consume(&c.state); t != nil {
		c.state.Ops.Gets.V.Store(c.state.Ops.Gets.V.Load() + 1)
		return t, true
	}
	if t := c.stealPass(); t != nil {
		c.state.Ops.Gets.V.Store(c.state.Ops.Gets.V.Load() + 1)
		return t, true
	}
	return nil, false
}

// stealPass walks the victims once in StealOrder and returns the first
// stolen task, or nil when the pass came up dry. For chunk-stealing
// substrates a success also migrates the rest of the stolen chunk into this
// consumer's pool.
func (c *Consumer[T]) stealPass() *T {
	n := len(c.victims)
	if n == 0 {
		return nil
	}
	start := 0
	switch c.fw.cfg.StealOrder {
	case StealRoundRobin:
		start = c.rrNext % n
		c.rrNext++
	case StealRandom:
		// xorshift64*; seeded from the consumer id on first use.
		if c.rng == 0 {
			c.rng = uint64(c.state.ID)*2685821657736338717 + 0x9E3779B97F4A7C15
		}
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		start = int(c.rng % uint64(n))
	}
	for k := 0; k < n; k++ {
		v := c.victims[(start+k)%n]
		if !c.fw.cfg.Latency {
			if t := c.myPool.Steal(&c.state, v); t != nil {
				return t
			}
			continue
		}
		stealStart := time.Now()
		if t := c.myPool.Steal(&c.state, v); t != nil {
			c.state.Ops.StealLatency.ObserveSince(stealStart)
			return t
		}
	}
	return nil
}

// GetBatch retrieves up to len(dst) tasks, blocking like Get: it returns 0
// only when the system was observed empty — linearizably so unless the
// framework was configured with NonLinearizableEmpty. It amortizes the
// consume traversal across the batch (one hazard publish and chunk
// validation per run on SALSA) and, after a successful steal, drains the
// migrated chunk's remainder into dst instead of returning a single task.
// With Latency enabled a non-empty call is sampled as one GetLatency
// observation.
func (c *Consumer[T]) GetBatch(dst []*T) int {
	c.checkLive()
	if len(dst) == 0 {
		return 0
	}
	// Call-free single-writer increment (stats.Counter.V docs).
	c.state.Ops.GetBatches.V.Store(c.state.Ops.GetBatches.V.Load() + 1)
	if !c.fw.cfg.Latency {
		return c.getBatch(dst)
	}
	start := time.Now()
	n := c.getBatch(dst)
	if n > 0 {
		c.state.Ops.GetLatency.ObserveSince(start)
	}
	return n
}

func (c *Consumer[T]) getBatch(dst []*T) int {
	if n := c.tryBatchOnce(dst); n > 0 {
		return n // bounded first pass: no watchdog marker (see get)
	}
	bo := backoff.Backoff{YieldOnly: true} // see get(): yields, never sleeps
	flight.BeginOp(c.state.FID)
	defer flight.EndOp(c.state.FID)
	for {
		if c.killed.Load() {
			return 0 // crashed mid-retrieval: unwind as empty
		}
		if c.fw.cfg.NonLinearizableEmpty || c.checkEmpty() {
			c.state.Ops.GetsEmpty.Inc()
			flight.RecordC(c.state.FID, flight.KGetEmpty, 0, 0, 0)
			return 0
		}
		bo.Pause()
		if n := c.tryBatchOnce(dst); n > 0 {
			return n
		}
	}
}

// TryGetBatch performs a single batched consume-then-steal pass without the
// emptiness protocol. Zero means "found nothing this pass", not "the system
// was empty".
func (c *Consumer[T]) TryGetBatch(dst []*T) int {
	c.checkLive()
	if len(dst) == 0 {
		return 0
	}
	c.state.Ops.GetBatches.V.Store(c.state.Ops.GetBatches.V.Load() + 1)
	if !c.fw.cfg.Latency {
		return c.tryBatchOnce(dst)
	}
	start := time.Now()
	n := c.tryBatchOnce(dst)
	if n > 0 {
		c.state.Ops.GetLatency.ObserveSince(start)
	}
	return n
}

// tryBatchOnce fills dst from the consumer's own pool and resorts to one
// steal pass only when that drain found nothing — SALSA's stealing policy
// (steal when the own pool is dry, §1.4), applied at batch granularity. A
// partial local fill returns immediately: scanning every victim to top up
// an already non-empty batch would turn each underfull call into an
// O(victims) walk and contend with the consumers that actually own those
// chunks. After a successful steal the migrated chunk's remainder is
// drained into dst, so a steal still yields a full run, not a single task.
func (c *Consumer[T]) tryBatchOnce(dst []*T) int {
	c.refresh()
	n := scpool.ConsumeBatch(c.myPool, &c.state, dst)
	if n == 0 {
		if t := c.stealPass(); t != nil {
			dst[0] = t
			n = 1 + scpool.ConsumeBatch(c.myPool, &c.state, dst[1:])
		}
	}
	if n > 0 {
		c.state.Ops.Gets.V.Store(c.state.Ops.Gets.V.Load() + int64(n))
		c.state.Ops.GetBatchSize.Observe(int64(n))
	}
	return n
}

// checkEmpty implements Algorithm 2 lines 30–36: n traversals over all
// pools; the first traversal plants this consumer's bit in every pool's
// indicator, and every traversal verifies both visible emptiness and that
// no possibly-emptying operation cleared the bit. n rounds absorb the up to
// n−1 task-taking operations that may have been in flight when the probe
// started (Lemma 6 / Claim 3).
//
// Membership makes two adjustments. The scan set is the epoch's full pool
// list, abandoned pools included forever: a straggler task can land in an
// abandoned pool (in-flight put, forced insert, a producer's current
// chunk) and is reclaimable by steal, so it must refute emptiness. And the
// probe pins the epoch it started on, aborting — returning "not empty",
// which just makes get() retry — the moment the epoch pointer moves: a
// consumer added mid-probe would otherwise have a pool this probe never
// scanned. Round count n is the registered-consumer count, ≥ the live
// count, so the Lemma 6 absorption argument carries over unchanged.
func (c *Consumer[T]) checkEmpty() bool {
	ep := c.refresh()
	n := len(ep.pools)
	tr := c.state.Tracer
	for i := 0; i < n; i++ {
		if i > 0 {
			// Widens the window between indicator planting and the later
			// verification rounds so chaos schedules can interleave a
			// produce or steal that must clear the bit and refute
			// emptiness.
			failpoint.Inject(failpoint.CheckEmptyBetweenScans, c.state.ID)
		}
		for _, p := range ep.pools {
			if i == 0 {
				p.SetIndicator(c.state.ID)
			}
			if !p.IsEmpty() || !p.CheckIndicator(c.state.ID) {
				if tr != nil {
					tr.OnCheckEmptyRound(telemetry.CheckEmptyRoundEvent{
						Consumer: c.state.ID, Round: i, Empty: false})
				}
				flight.RecordC(c.state.FID, flight.KCheckEmptyAbort, 0, 0, int32(i))
				return false
			}
		}
		if c.fw.epoch.Load() != ep {
			// Membership changed mid-probe; not linearizable. b=1 marks
			// the epoch-moved abort apart from plain refutations.
			flight.RecordC(c.state.FID, flight.KCheckEmptyAbort, 0, 1, int32(i))
			return false
		}
		if tr != nil {
			tr.OnCheckEmptyRound(telemetry.CheckEmptyRoundEvent{
				Consumer: c.state.ID, Round: i, Empty: true})
		}
	}
	return true
}

// Ops returns this consumer's operation counters.
func (c *Consumer[T]) Ops() stats.Snapshot { return c.state.Ops.Snapshot() }

// ID returns the consumer id.
func (c *Consumer[T]) ID() int { return c.state.ID }

// Node returns the NUMA node the consumer is placed on.
func (c *Consumer[T]) Node() int { return c.state.Node }

// Departed reports whether this consumer has retired or been killed.
func (c *Consumer[T]) Departed() bool { return c.departed.Load() }

// State exposes the consumer's scpool state for implementation-specific
// teardown (e.g. releasing SALSA's hazard record).
func (c *Consumer[T]) State() *scpool.ConsumerState { return &c.state }

// ProducerState exposes the producer's scpool state.
func (p *Producer[T]) ProducerState() *scpool.ProducerState { return &p.state }
