// Package salsa is a scalable, low-synchronization, NUMA-aware
// producer-consumer task pool for Go — a reproduction of
//
//	Gidron, Keidar, Perelman, Perez:
//	"SALSA: Scalable and Low Synchronization NUMA-aware Algorithm for
//	Producer-Consumer Pools", SPAA 2012.
//
// A Pool is operated through per-thread handles: each producer goroutine
// owns a Producer handle and each consumer goroutine a Consumer handle.
// Tasks flow from producers to the consumers closest to them on the NUMA
// topology; a consumer that runs dry steals entire chunks of tasks from
// other consumers' pools, and a Get that returns ok=false guarantees the
// pool was empty at some instant during the call (linearizable emptiness).
//
// The default algorithm is SALSA; the algorithms the paper evaluates
// against (SALSA+CAS, Concurrent Bags, WS-MSQ, WS-LIFO) and three further
// related-work designs from its §1.2 (ED-Pool, WS-ChunkQ, WS-Baskets) are
// selectable via Config.Algorithm, primarily for benchmarking.
//
// Basic usage:
//
//	pool, _ := salsa.New[Job](salsa.Config{Producers: 4, Consumers: 4})
//	p := pool.Producer(0) // one handle per producing goroutine
//	c := pool.Consumer(0) // one handle per consuming goroutine
//	p.Put(&Job{...})
//	job, ok := c.Get()
package salsa

import (
	"fmt"
	"sync"

	"salsa/internal/telemetry"

	"salsa/internal/concbag"
	"salsa/internal/core"
	"salsa/internal/edpool"
	"salsa/internal/framework"
	"salsa/internal/salsacas"
	"salsa/internal/scpool"
	"salsa/internal/stats"
	"salsa/internal/topology"
	"salsa/internal/wsbase"
)

// Algorithm selects the pool implementation.
type Algorithm int

const (
	// SALSA is the paper's algorithm: per-producer chunk lists, chunk
	// ownership with a CAS-free consume fast path, chunk-granularity
	// stealing, chunk pools with producer-based balancing.
	SALSA Algorithm = iota
	// SALSACAS is the paper's ablation baseline: identical layout, but
	// every retrieval claims a single task by CAS.
	SALSACAS
	// ConcBag is the Concurrent Bags algorithm (Sundell et al., SPAA'11).
	ConcBag
	// WSMSQ is work stealing over per-consumer Michael–Scott FIFO queues.
	WSMSQ
	// WSLIFO is work stealing over per-consumer lock-free LIFO stacks.
	WSLIFO
	// EDPool is an elimination-diffraction pool (Afek et al., Euro-Par
	// 2010): a tree of queues fed through diffracting balancers with
	// elimination arrays. Discussed (not benchmarked) by the paper's
	// related work (§1.2); provided here as an extended baseline.
	EDPool
	// WSCHUNKQ is work stealing over per-consumer chunk-based FIFO
	// queues in the style of Gidenstam et al. (OPODIS 2010) — the
	// related-work design whose shared head/tail move once per chunk
	// but whose every element still costs an atomic RMW (§1.2).
	WSCHUNKQ
	// WSBaskets is work stealing over per-consumer Baskets Queues
	// (Hoffman et al., OPODIS 2007): concurrent enqueues share a basket
	// instead of re-contending for the tail (§1.2).
	WSBaskets
)

// String returns the algorithm's name as used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case SALSA:
		return "SALSA"
	case SALSACAS:
		return "SALSA+CAS"
	case ConcBag:
		return "ConcBag"
	case WSMSQ:
		return "WS-MSQ"
	case WSLIFO:
		return "WS-LIFO"
	case EDPool:
		return "ED-Pool"
	case WSCHUNKQ:
		return "WS-ChunkQ"
	case WSBaskets:
		return "WS-Baskets"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Placement selects how producers and consumers are laid out on the NUMA
// topology.
type Placement int

const (
	// PlacementInterleaved co-locates producer/consumer pairs on each
	// node — the paper's standard setup.
	PlacementInterleaved Placement = iota
	// PlacementPacked fills nodes in order, producers first.
	PlacementPacked
	// PlacementScattered deals threads across cores ignoring node
	// boundaries, approximating OS-controlled affinity (§1.6.5).
	PlacementScattered
)

// AllocationPolicy selects where chunks are (logically) allocated.
type AllocationPolicy int

const (
	// AllocLocal places each consumer's chunks on its own node (default).
	AllocLocal AllocationPolicy = iota
	// AllocCentral places all chunks on node 0 — the paper's adversarial
	// configuration in Figure 1.7. Only meaningful for experiments.
	AllocCentral
)

// Stats is the aggregated operation census of a pool; see the field
// documentation in internal/stats.
type Stats = stats.Snapshot

// StealOrder is the victim-iteration policy for steal attempts.
type StealOrder = framework.StealOrder

// Steal-order policies.
const (
	// StealNearestFirst walks the NUMA access list in order (default).
	StealNearestFirst = framework.StealNearestFirst
	// StealRoundRobin rotates the starting victim each traversal.
	StealRoundRobin = framework.StealRoundRobin
	// StealRandom picks a pseudo-random starting victim each traversal.
	StealRandom = framework.StealRandom
)

// Config configures a Pool.
type Config struct {
	// Producers and Consumers fix the number of handles. Required.
	Producers int
	Consumers int

	// MaxConsumers bounds the total number of consumers ever registered
	// over the pool's lifetime, initial and added together. Elastic
	// membership (AddConsumer / RetireConsumer / KillConsumer) assigns
	// monotonic consumer ids that are never reused — a recycled id would
	// alias a departed consumer's chunk-ownership words — and substrate
	// capacity (empty-indicator sizes, owner-id ranges) is fixed at
	// construction. Zero means Consumers: a fixed-membership pool with
	// no join headroom.
	MaxConsumers int

	// Algorithm selects the implementation; default SALSA.
	Algorithm Algorithm

	// ChunkSize overrides the chunk/block capacity in tasks. Defaults:
	// 1000 for SALSA and SALSA+CAS, 128 for ConcBag (the paper's
	// respective optima, Fig. 1.8). Ignored by WS-MSQ/WS-LIFO.
	ChunkSize int

	// NUMANodes and CoresPerNode describe the machine; when both are
	// zero, the topology is discovered from the OS (Linux) or defaults
	// to a single node wide enough for all threads.
	NUMANodes    int
	CoresPerNode int

	// Placement lays threads out on the topology.
	Placement Placement

	// Allocation selects the chunk-home policy (experiments only).
	Allocation AllocationPolicy

	// DisableBalancing turns off producer-based balancing (§1.5.4):
	// producers then always insert into the nearest pool, expanding it
	// when full. Exposed for the Figure 1.6 ablation.
	DisableBalancing bool

	// NonLinearizableEmpty makes Get report emptiness after one
	// fruitless traversal instead of the checkEmpty protocol — faster,
	// but ok=false no longer proves the pool was ever empty.
	NonLinearizableEmpty bool

	// StealOrder selects the victim-iteration policy for steal
	// attempts: nearest-first (default, the paper's NUMA-aware order),
	// round-robin, or random. The paper leaves this open as an
	// engineering knob (§1.4) and found stealing policy worth 53%
	// for one of its baselines (§1.6.3).
	StealOrder StealOrder

	// OnAccess, when set, is called for every task transfer with the
	// accessing thread's NUMA node and the chunk's home node; the NUMA
	// interconnect simulator hooks in here. Leave nil in production.
	OnAccess func(fromNode, homeNode int)

	// InitialChunks pre-seeds each pool's spare-chunk pool. Defaults to
	// 2 for SALSA/SALSA+CAS.
	InitialChunks int

	// LaneSize, when positive, gives every producer handle a fixed-size
	// SPSC front lane of that many tasks (rounded up to a power of
	// two): Put buffers into the lane and the whole run is published
	// into chunks through the batch produce path when the lane fills or
	// Producer.Flush is called, amortizing the per-task produce cost
	// across the run (Torquati-style producer batching).
	//
	// Semantics trade-off: tasks buffered in a lane are NOT yet in the
	// pool — they are invisible to Get, to stealing and to the
	// linearizable emptiness protocol until flushed, and they live in
	// the producer's goroutine (a crashed producer loses its unflushed
	// run, exactly like tasks it had not yet Put). Producers must call
	// Flush before relying on buffered tasks being retrievable. Zero
	// disables lanes — the default, and the paper's put() semantics.
	LaneSize int

	// FlightBase offsets this pool's actor ids in the process-global
	// flight recorder (internal/flight): producer/consumer i records as
	// actor FlightBase+i. The recorder's per-actor rings are
	// single-writer, so when several pools share one process (e.g. two
	// remote shards in one binary) each must claim a disjoint id range.
	// Zero — the default — is correct for a single pool.
	FlightBase int

	// Metrics enables the built-in telemetry collector (per-consumer
	// steal matrices, checkEmpty tallies, producer pressure counters)
	// and wall-clock latency sampling of Put/Get/steal into histograms.
	// The collected data is read through Pool.TelemetrySnapshot,
	// Pool.MetricsHandler or Pool.ServeMetrics. Collection follows the
	// same single-writer no-RMW discipline as the operation counters;
	// the main cost of enabling it is two clock reads per operation.
	Metrics bool

	// Tracer, when non-nil, receives raw telemetry events (steals,
	// chunk transfers, emptiness rounds, producer pressure) in addition
	// to — and independently of — the Metrics collector. Implementations
	// must be concurrency-safe; see the Tracer docs. Leave nil unless
	// event-level tracing is wanted: every event costs a dynamic call.
	Tracer Tracer
}

func (c Config) withDefaults() Config {
	if c.ChunkSize == 0 {
		if c.Algorithm == ConcBag {
			c.ChunkSize = concbag.DefaultBlockSize
		} else {
			c.ChunkSize = core.DefaultChunkSize
		}
	}
	if c.InitialChunks == 0 {
		c.InitialChunks = 2
	}
	if c.MaxConsumers == 0 {
		c.MaxConsumers = c.Consumers
	}
	return c
}

// Pool is a producer-consumer task pool. Construct with New, then hand each
// goroutine its own Producer or Consumer handle.
type Pool[T any] struct {
	cfg       Config
	fw        *framework.Framework[T]
	topo      *topology.Topology
	placement *topology.Placement  // epoch-0 placement; fw holds the current one
	salsa     *core.Shared[T]      // non-nil when Algorithm == SALSA
	collector *telemetry.Collector // non-nil when Config.Metrics
	producers []*Producer[T]

	// mu guards consumers, which grows under AddConsumer. Handles are
	// never removed; departed consumers keep their (closed) entry.
	mu        sync.Mutex
	consumers []*Consumer[T]
}

// New builds a pool.
func New[T any](cfg Config) (*Pool[T], error) {
	cfg = cfg.withDefaults()
	if cfg.Producers <= 0 || cfg.Consumers <= 0 {
		return nil, fmt.Errorf("salsa: Producers and Consumers must be positive (got %d, %d)",
			cfg.Producers, cfg.Consumers)
	}
	if cfg.MaxConsumers < cfg.Consumers {
		return nil, fmt.Errorf("salsa: MaxConsumers %d below Consumers %d",
			cfg.MaxConsumers, cfg.Consumers)
	}

	topo, err := buildTopology(cfg)
	if err != nil {
		return nil, err
	}
	var pp topology.PlacementPolicy
	switch cfg.Placement {
	case PlacementInterleaved:
		pp = topology.PlaceInterleaved
	case PlacementPacked:
		pp = topology.PlacePacked
	case PlacementScattered:
		pp = topology.PlaceRandomish
	default:
		return nil, fmt.Errorf("salsa: unknown placement %d", cfg.Placement)
	}
	placement := topology.Place(topo, cfg.Producers, cfg.Consumers, pp)

	p := &Pool[T]{cfg: cfg, topo: topo, placement: placement}
	factory, err := p.poolFactory()
	if err != nil {
		return nil, err
	}
	tracer := cfg.Tracer
	if cfg.Metrics {
		// Sized for MaxConsumers: consumers that join later need their
		// single-writer rows to exist up front.
		p.collector = telemetry.NewCollector(cfg.Producers, cfg.MaxConsumers)
		tracer = telemetry.Multi(p.collector, cfg.Tracer)
	}
	fw, err := framework.New(framework.Config[T]{
		Producers:            cfg.Producers,
		Consumers:            cfg.Consumers,
		MaxConsumers:         cfg.MaxConsumers,
		Placement:            placement,
		NewPool:              factory,
		DisableBalancing:     cfg.DisableBalancing,
		NonLinearizableEmpty: cfg.NonLinearizableEmpty,
		StealOrder:           cfg.StealOrder,
		Tracer:               tracer,
		Latency:              cfg.Metrics,
		LaneSize:             cfg.LaneSize,
		FlightBase:           cfg.FlightBase,
	})
	if err != nil {
		return nil, err
	}
	p.fw = fw
	p.producers = make([]*Producer[T], cfg.Producers)
	for i := range p.producers {
		p.producers[i] = &Producer[T]{h: fw.Producer(i), pool: p}
	}
	p.consumers = make([]*Consumer[T], cfg.Consumers)
	for i := range p.consumers {
		p.consumers[i] = &Consumer[T]{h: fw.Consumer(i), pool: p}
	}
	return p, nil
}

func buildTopology(cfg Config) (*topology.Topology, error) {
	if cfg.NUMANodes > 0 && cfg.CoresPerNode > 0 {
		return topology.Synthetic(cfg.NUMANodes, cfg.CoresPerNode), nil
	}
	if cfg.NUMANodes > 0 || cfg.CoresPerNode > 0 {
		return nil, fmt.Errorf("salsa: NUMANodes and CoresPerNode must be set together")
	}
	if t, err := topology.Discover(); err == nil {
		return t, nil
	}
	return topology.UMA(cfg.Producers + cfg.Consumers), nil
}

// poolFactory builds the substrate factory. Every substrate is sized for
// Config.MaxConsumers consumer ids (not the initial Consumers count):
// empty-indicator slots, owner-id ranges and per-consumer regions must
// already exist for consumers that join later, because capacity is fixed
// at construction while membership is not.
func (p *Pool[T]) poolFactory() (framework.PoolFactory[T], error) {
	cfg := p.cfg
	alloc := core.AllocLocal
	if cfg.Allocation == AllocCentral {
		alloc = core.AllocCentral
	}
	switch cfg.Algorithm {
	case SALSA:
		shared, err := core.NewShared[T](core.Options{
			ChunkSize:     cfg.ChunkSize,
			Consumers:     cfg.MaxConsumers,
			Alloc:         alloc,
			OnAccess:      cfg.OnAccess,
			InitialChunks: cfg.InitialChunks,
		})
		if err != nil {
			return nil, err
		}
		p.salsa = shared
		return func(owner, node, producers int) (scpool.SCPool[T], error) {
			return shared.NewPool(owner, node, producers)
		}, nil
	case SALSACAS:
		shared, err := salsacas.NewShared[T](salsacas.Options{
			ChunkSize:     cfg.ChunkSize,
			Consumers:     cfg.MaxConsumers,
			Alloc:         alloc,
			OnAccess:      cfg.OnAccess,
			InitialChunks: cfg.InitialChunks,
		})
		if err != nil {
			return nil, err
		}
		return func(owner, node, producers int) (scpool.SCPool[T], error) {
			return shared.NewPool(owner, node, producers)
		}, nil
	case ConcBag:
		bag, err := concbag.NewBag[T](concbag.Options{
			BlockSize: cfg.ChunkSize,
			Producers: cfg.Producers,
			Consumers: cfg.MaxConsumers,
		})
		if err != nil {
			return nil, err
		}
		return func(owner, _, _ int) (scpool.SCPool[T], error) {
			return bag.NewPool(owner)
		}, nil
	case WSMSQ:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.MaxConsumers, wsbase.FIFO)
		}, nil
	case WSLIFO:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.MaxConsumers, wsbase.LIFO)
		}, nil
	case WSCHUNKQ:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.MaxConsumers, wsbase.CHUNKQ)
		}, nil
	case WSBaskets:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.MaxConsumers, wsbase.BASKETS)
		}, nil
	case EDPool:
		depth := 1
		for 1<<depth < cfg.MaxConsumers && depth < 8 {
			depth++
		}
		pool, err := edpool.New[T](edpool.Options{Depth: depth, Consumers: cfg.MaxConsumers})
		if err != nil {
			return nil, err
		}
		return func(owner, _, _ int) (scpool.SCPool[T], error) {
			return pool.NewFacade(owner)
		}, nil
	default:
		return nil, fmt.Errorf("salsa: unknown algorithm %v", cfg.Algorithm)
	}
}

// Producer returns producer handle i (0 ≤ i < Config.Producers). Repeated
// calls return the same handle; a handle must be driven by a single
// goroutine at a time.
func (p *Pool[T]) Producer(i int) *Producer[T] { return p.producers[i] }

// Consumer returns consumer handle i (0 ≤ i < NumConsumers). Repeated
// calls return the same handle; a handle must be driven by a single
// goroutine at a time. Handles of departed consumers remain accessible
// (closed; their Get panics).
func (p *Pool[T]) Consumer(i int) *Consumer[T] {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consumers[i]
}

// AddConsumer grows the live consumer set by one at runtime and returns
// the new handle (id = previous NumConsumers). The consumer is placed on
// the least-loaded core of the topology, producers start routing to it on
// their next Put, and it participates in stealing and the emptiness
// protocol immediately. Fails when Config.MaxConsumers ids have been
// registered — ids are never reused, so capacity is lifetime-total.
func (p *Pool[T]) AddConsumer() (*Consumer[T], error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, err := p.fw.AddConsumer()
	if err != nil {
		return nil, err
	}
	c := &Consumer[T]{h: h, pool: p}
	p.consumers = append(p.consumers, c)
	return c, nil
}

// RetireConsumer gracefully removes consumer id from the live set. The
// caller must have stopped the goroutine driving the handle first. The
// departing pool is abandoned: producers fail over to the remaining
// consumers, its spare chunks drain into the nearest live survivor, and
// every task still queued in it is reclaimed — exactly once — by the
// survivors through the ordinary steal path. The handle is closed (its
// SALSA hazard record released); subsequent Get calls panic. The last
// live consumer cannot retire.
func (p *Pool[T]) RetireConsumer(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.consumers) {
		return fmt.Errorf("salsa: consumer id %d out of range [0,%d)", id, len(p.consumers))
	}
	if err := p.fw.RetireConsumer(id); err != nil {
		return err
	}
	c := p.consumers[id]
	if !c.closed.Swap(true) && p.salsa != nil {
		p.salsa.ReleaseConsumer(c.h.State())
	}
	return nil
}

// KillConsumer declares consumer id crashed — the fault-injection path.
// Unlike RetireConsumer it assumes no cooperation from the victim: the
// pool is abandoned and survivors reclaim its tasks, but the victim's
// hazard record is never released (it may still be in use), which can
// pin at most two chunks from recycling. If the victim was killed
// mid-retrieval, at most its single announced in-flight task slot is
// treated as consumed by thieves; a quiescent victim loses nothing.
func (p *Pool[T]) KillConsumer(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.consumers) {
		return fmt.Errorf("salsa: consumer id %d out of range [0,%d)", id, len(p.consumers))
	}
	if err := p.fw.KillConsumer(id); err != nil {
		return err
	}
	// killed before closed: a retrieval racing the kill must fall into the
	// soft-fail path (report empty), never the closed panic.
	p.consumers[id].killed.Store(true)
	p.consumers[id].closed.Store(true) // leak the hazard record, by design
	return nil
}

// MembershipEpoch returns the current membership epoch: 0 at construction,
// +1 for every AddConsumer, RetireConsumer or KillConsumer.
func (p *Pool[T]) MembershipEpoch() uint64 { return p.fw.MembershipEpoch() }

// LiveConsumers returns the number of consumers that have not departed.
func (p *Pool[T]) LiveConsumers() int { return p.fw.LiveConsumers() }

// Stats aggregates the operation counters of all handles.
func (p *Pool[T]) Stats() Stats { return p.fw.Stats() }

// Close releases per-consumer resources (SALSA hazard records) for every
// consumer handle. Call once after all worker goroutines have stopped;
// equivalent to calling Close on each Consumer. Safe to call repeatedly.
func (p *Pool[T]) Close() {
	p.mu.Lock()
	consumers := p.consumers[:len(p.consumers):len(p.consumers)]
	p.mu.Unlock()
	for _, c := range consumers {
		c.Close()
	}
}

// NumProducers returns the configured producer count.
func (p *Pool[T]) NumProducers() int { return p.cfg.Producers }

// NumConsumers returns the number of consumers ever registered (departed
// included); consumer ids 0..NumConsumers-1 are valid Consumer indices.
// See LiveConsumers for the live count.
func (p *Pool[T]) NumConsumers() int { return p.fw.NumConsumers() }

// Algorithm returns the configured algorithm.
func (p *Pool[T]) Algorithm() Algorithm { return p.cfg.Algorithm }

// ConsumerAccessList returns the stealing order of consumer i, nearest
// first (self excluded) — diagnostic insight into the NUMA policy. The
// list reflects the current membership epoch and includes departed
// consumers' pools: survivors keep stealing from abandoned pools to
// reclaim their tasks.
func (p *Pool[T]) ConsumerAccessList(i int) []int {
	list := p.fw.Placement().ConsumerAccessList(i)
	out := make([]int, 0, len(list)-1)
	for _, c := range list {
		if c != i {
			out = append(out, c)
		}
	}
	return out
}

// ProducerAccessList returns the insertion order of producer i over all
// registered consumers, nearest first (routing skips departed ones).
func (p *Pool[T]) ProducerAccessList(i int) []int {
	return append([]int(nil), p.fw.Placement().ProducerAccessList(i)...)
}
