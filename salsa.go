// Package salsa is a scalable, low-synchronization, NUMA-aware
// producer-consumer task pool for Go — a reproduction of
//
//	Gidron, Keidar, Perelman, Perez:
//	"SALSA: Scalable and Low Synchronization NUMA-aware Algorithm for
//	Producer-Consumer Pools", SPAA 2012.
//
// A Pool is operated through per-thread handles: each producer goroutine
// owns a Producer handle and each consumer goroutine a Consumer handle.
// Tasks flow from producers to the consumers closest to them on the NUMA
// topology; a consumer that runs dry steals entire chunks of tasks from
// other consumers' pools, and a Get that returns ok=false guarantees the
// pool was empty at some instant during the call (linearizable emptiness).
//
// The default algorithm is SALSA; the algorithms the paper evaluates
// against (SALSA+CAS, Concurrent Bags, WS-MSQ, WS-LIFO) and three further
// related-work designs from its §1.2 (ED-Pool, WS-ChunkQ, WS-Baskets) are
// selectable via Config.Algorithm, primarily for benchmarking.
//
// Basic usage:
//
//	pool, _ := salsa.New[Job](salsa.Config{Producers: 4, Consumers: 4})
//	p := pool.Producer(0) // one handle per producing goroutine
//	c := pool.Consumer(0) // one handle per consuming goroutine
//	p.Put(&Job{...})
//	job, ok := c.Get()
package salsa

import (
	"fmt"

	"salsa/internal/telemetry"

	"salsa/internal/concbag"
	"salsa/internal/core"
	"salsa/internal/edpool"
	"salsa/internal/framework"
	"salsa/internal/salsacas"
	"salsa/internal/scpool"
	"salsa/internal/stats"
	"salsa/internal/topology"
	"salsa/internal/wsbase"
)

// Algorithm selects the pool implementation.
type Algorithm int

const (
	// SALSA is the paper's algorithm: per-producer chunk lists, chunk
	// ownership with a CAS-free consume fast path, chunk-granularity
	// stealing, chunk pools with producer-based balancing.
	SALSA Algorithm = iota
	// SALSACAS is the paper's ablation baseline: identical layout, but
	// every retrieval claims a single task by CAS.
	SALSACAS
	// ConcBag is the Concurrent Bags algorithm (Sundell et al., SPAA'11).
	ConcBag
	// WSMSQ is work stealing over per-consumer Michael–Scott FIFO queues.
	WSMSQ
	// WSLIFO is work stealing over per-consumer lock-free LIFO stacks.
	WSLIFO
	// EDPool is an elimination-diffraction pool (Afek et al., Euro-Par
	// 2010): a tree of queues fed through diffracting balancers with
	// elimination arrays. Discussed (not benchmarked) by the paper's
	// related work (§1.2); provided here as an extended baseline.
	EDPool
	// WSCHUNKQ is work stealing over per-consumer chunk-based FIFO
	// queues in the style of Gidenstam et al. (OPODIS 2010) — the
	// related-work design whose shared head/tail move once per chunk
	// but whose every element still costs an atomic RMW (§1.2).
	WSCHUNKQ
	// WSBaskets is work stealing over per-consumer Baskets Queues
	// (Hoffman et al., OPODIS 2007): concurrent enqueues share a basket
	// instead of re-contending for the tail (§1.2).
	WSBaskets
)

// String returns the algorithm's name as used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case SALSA:
		return "SALSA"
	case SALSACAS:
		return "SALSA+CAS"
	case ConcBag:
		return "ConcBag"
	case WSMSQ:
		return "WS-MSQ"
	case WSLIFO:
		return "WS-LIFO"
	case EDPool:
		return "ED-Pool"
	case WSCHUNKQ:
		return "WS-ChunkQ"
	case WSBaskets:
		return "WS-Baskets"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Placement selects how producers and consumers are laid out on the NUMA
// topology.
type Placement int

const (
	// PlacementInterleaved co-locates producer/consumer pairs on each
	// node — the paper's standard setup.
	PlacementInterleaved Placement = iota
	// PlacementPacked fills nodes in order, producers first.
	PlacementPacked
	// PlacementScattered deals threads across cores ignoring node
	// boundaries, approximating OS-controlled affinity (§1.6.5).
	PlacementScattered
)

// AllocationPolicy selects where chunks are (logically) allocated.
type AllocationPolicy int

const (
	// AllocLocal places each consumer's chunks on its own node (default).
	AllocLocal AllocationPolicy = iota
	// AllocCentral places all chunks on node 0 — the paper's adversarial
	// configuration in Figure 1.7. Only meaningful for experiments.
	AllocCentral
)

// Stats is the aggregated operation census of a pool; see the field
// documentation in internal/stats.
type Stats = stats.Snapshot

// StealOrder is the victim-iteration policy for steal attempts.
type StealOrder = framework.StealOrder

// Steal-order policies.
const (
	// StealNearestFirst walks the NUMA access list in order (default).
	StealNearestFirst = framework.StealNearestFirst
	// StealRoundRobin rotates the starting victim each traversal.
	StealRoundRobin = framework.StealRoundRobin
	// StealRandom picks a pseudo-random starting victim each traversal.
	StealRandom = framework.StealRandom
)

// Config configures a Pool.
type Config struct {
	// Producers and Consumers fix the number of handles. Required.
	Producers int
	Consumers int

	// Algorithm selects the implementation; default SALSA.
	Algorithm Algorithm

	// ChunkSize overrides the chunk/block capacity in tasks. Defaults:
	// 1000 for SALSA and SALSA+CAS, 128 for ConcBag (the paper's
	// respective optima, Fig. 1.8). Ignored by WS-MSQ/WS-LIFO.
	ChunkSize int

	// NUMANodes and CoresPerNode describe the machine; when both are
	// zero, the topology is discovered from the OS (Linux) or defaults
	// to a single node wide enough for all threads.
	NUMANodes    int
	CoresPerNode int

	// Placement lays threads out on the topology.
	Placement Placement

	// Allocation selects the chunk-home policy (experiments only).
	Allocation AllocationPolicy

	// DisableBalancing turns off producer-based balancing (§1.5.4):
	// producers then always insert into the nearest pool, expanding it
	// when full. Exposed for the Figure 1.6 ablation.
	DisableBalancing bool

	// NonLinearizableEmpty makes Get report emptiness after one
	// fruitless traversal instead of the checkEmpty protocol — faster,
	// but ok=false no longer proves the pool was ever empty.
	NonLinearizableEmpty bool

	// StealOrder selects the victim-iteration policy for steal
	// attempts: nearest-first (default, the paper's NUMA-aware order),
	// round-robin, or random. The paper leaves this open as an
	// engineering knob (§1.4) and found stealing policy worth 53%
	// for one of its baselines (§1.6.3).
	StealOrder StealOrder

	// OnAccess, when set, is called for every task transfer with the
	// accessing thread's NUMA node and the chunk's home node; the NUMA
	// interconnect simulator hooks in here. Leave nil in production.
	OnAccess func(fromNode, homeNode int)

	// InitialChunks pre-seeds each pool's spare-chunk pool. Defaults to
	// 2 for SALSA/SALSA+CAS.
	InitialChunks int

	// Metrics enables the built-in telemetry collector (per-consumer
	// steal matrices, checkEmpty tallies, producer pressure counters)
	// and wall-clock latency sampling of Put/Get/steal into histograms.
	// The collected data is read through Pool.TelemetrySnapshot,
	// Pool.MetricsHandler or Pool.ServeMetrics. Collection follows the
	// same single-writer no-RMW discipline as the operation counters;
	// the main cost of enabling it is two clock reads per operation.
	Metrics bool

	// Tracer, when non-nil, receives raw telemetry events (steals,
	// chunk transfers, emptiness rounds, producer pressure) in addition
	// to — and independently of — the Metrics collector. Implementations
	// must be concurrency-safe; see the Tracer docs. Leave nil unless
	// event-level tracing is wanted: every event costs a dynamic call.
	Tracer Tracer
}

func (c Config) withDefaults() Config {
	if c.ChunkSize == 0 {
		if c.Algorithm == ConcBag {
			c.ChunkSize = concbag.DefaultBlockSize
		} else {
			c.ChunkSize = core.DefaultChunkSize
		}
	}
	if c.InitialChunks == 0 {
		c.InitialChunks = 2
	}
	return c
}

// Pool is a producer-consumer task pool. Construct with New, then hand each
// goroutine its own Producer or Consumer handle.
type Pool[T any] struct {
	cfg       Config
	fw        *framework.Framework[T]
	topo      *topology.Topology
	placement *topology.Placement
	salsa     *core.Shared[T]      // non-nil when Algorithm == SALSA
	collector *telemetry.Collector // non-nil when Config.Metrics
	producers []*Producer[T]
	consumers []*Consumer[T]
}

// New builds a pool.
func New[T any](cfg Config) (*Pool[T], error) {
	cfg = cfg.withDefaults()
	if cfg.Producers <= 0 || cfg.Consumers <= 0 {
		return nil, fmt.Errorf("salsa: Producers and Consumers must be positive (got %d, %d)",
			cfg.Producers, cfg.Consumers)
	}

	topo, err := buildTopology(cfg)
	if err != nil {
		return nil, err
	}
	var pp topology.PlacementPolicy
	switch cfg.Placement {
	case PlacementInterleaved:
		pp = topology.PlaceInterleaved
	case PlacementPacked:
		pp = topology.PlacePacked
	case PlacementScattered:
		pp = topology.PlaceRandomish
	default:
		return nil, fmt.Errorf("salsa: unknown placement %d", cfg.Placement)
	}
	placement := topology.Place(topo, cfg.Producers, cfg.Consumers, pp)

	p := &Pool[T]{cfg: cfg, topo: topo, placement: placement}
	factory, err := p.poolFactory()
	if err != nil {
		return nil, err
	}
	tracer := cfg.Tracer
	if cfg.Metrics {
		p.collector = telemetry.NewCollector(cfg.Producers, cfg.Consumers)
		tracer = telemetry.Multi(p.collector, cfg.Tracer)
	}
	fw, err := framework.New(framework.Config[T]{
		Producers:            cfg.Producers,
		Consumers:            cfg.Consumers,
		Placement:            placement,
		NewPool:              factory,
		DisableBalancing:     cfg.DisableBalancing,
		NonLinearizableEmpty: cfg.NonLinearizableEmpty,
		StealOrder:           cfg.StealOrder,
		Tracer:               tracer,
		Latency:              cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	p.fw = fw
	p.producers = make([]*Producer[T], cfg.Producers)
	for i := range p.producers {
		p.producers[i] = &Producer[T]{h: fw.Producer(i), pool: p}
	}
	p.consumers = make([]*Consumer[T], cfg.Consumers)
	for i := range p.consumers {
		p.consumers[i] = &Consumer[T]{h: fw.Consumer(i), pool: p}
	}
	return p, nil
}

func buildTopology(cfg Config) (*topology.Topology, error) {
	if cfg.NUMANodes > 0 && cfg.CoresPerNode > 0 {
		return topology.Synthetic(cfg.NUMANodes, cfg.CoresPerNode), nil
	}
	if cfg.NUMANodes > 0 || cfg.CoresPerNode > 0 {
		return nil, fmt.Errorf("salsa: NUMANodes and CoresPerNode must be set together")
	}
	if t, err := topology.Discover(); err == nil {
		return t, nil
	}
	return topology.UMA(cfg.Producers + cfg.Consumers), nil
}

func (p *Pool[T]) poolFactory() (framework.PoolFactory[T], error) {
	cfg := p.cfg
	alloc := core.AllocLocal
	if cfg.Allocation == AllocCentral {
		alloc = core.AllocCentral
	}
	switch cfg.Algorithm {
	case SALSA:
		shared, err := core.NewShared[T](core.Options{
			ChunkSize:     cfg.ChunkSize,
			Consumers:     cfg.Consumers,
			Alloc:         alloc,
			OnAccess:      cfg.OnAccess,
			InitialChunks: cfg.InitialChunks,
		})
		if err != nil {
			return nil, err
		}
		p.salsa = shared
		return func(owner, node, producers int) (scpool.SCPool[T], error) {
			return shared.NewPool(owner, node, producers)
		}, nil
	case SALSACAS:
		shared, err := salsacas.NewShared[T](salsacas.Options{
			ChunkSize:     cfg.ChunkSize,
			Consumers:     cfg.Consumers,
			Alloc:         alloc,
			OnAccess:      cfg.OnAccess,
			InitialChunks: cfg.InitialChunks,
		})
		if err != nil {
			return nil, err
		}
		return func(owner, node, producers int) (scpool.SCPool[T], error) {
			return shared.NewPool(owner, node, producers)
		}, nil
	case ConcBag:
		bag, err := concbag.NewBag[T](concbag.Options{
			BlockSize: cfg.ChunkSize,
			Producers: cfg.Producers,
			Consumers: cfg.Consumers,
		})
		if err != nil {
			return nil, err
		}
		return func(owner, _, _ int) (scpool.SCPool[T], error) {
			return bag.NewPool(owner)
		}, nil
	case WSMSQ:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.Consumers, wsbase.FIFO)
		}, nil
	case WSLIFO:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.Consumers, wsbase.LIFO)
		}, nil
	case WSCHUNKQ:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.Consumers, wsbase.CHUNKQ)
		}, nil
	case WSBaskets:
		return func(owner, node, _ int) (scpool.SCPool[T], error) {
			return wsbase.New[T](owner, node, cfg.Consumers, wsbase.BASKETS)
		}, nil
	case EDPool:
		depth := 1
		for 1<<depth < cfg.Consumers && depth < 8 {
			depth++
		}
		pool, err := edpool.New[T](edpool.Options{Depth: depth, Consumers: cfg.Consumers})
		if err != nil {
			return nil, err
		}
		return func(owner, _, _ int) (scpool.SCPool[T], error) {
			return pool.NewFacade(owner)
		}, nil
	default:
		return nil, fmt.Errorf("salsa: unknown algorithm %v", cfg.Algorithm)
	}
}

// Producer returns producer handle i (0 ≤ i < Config.Producers). Repeated
// calls return the same handle; a handle must be driven by a single
// goroutine at a time.
func (p *Pool[T]) Producer(i int) *Producer[T] { return p.producers[i] }

// Consumer returns consumer handle i (0 ≤ i < Config.Consumers). Repeated
// calls return the same handle; a handle must be driven by a single
// goroutine at a time.
func (p *Pool[T]) Consumer(i int) *Consumer[T] { return p.consumers[i] }

// Stats aggregates the operation counters of all handles.
func (p *Pool[T]) Stats() Stats { return p.fw.Stats() }

// Close releases per-consumer resources (SALSA hazard records) for every
// consumer handle. Call once after all worker goroutines have stopped;
// equivalent to calling Close on each Consumer. Safe to call repeatedly.
func (p *Pool[T]) Close() {
	for _, c := range p.consumers {
		c.Close()
	}
}

// NumProducers returns the configured producer count.
func (p *Pool[T]) NumProducers() int { return p.cfg.Producers }

// NumConsumers returns the configured consumer count.
func (p *Pool[T]) NumConsumers() int { return p.cfg.Consumers }

// Algorithm returns the configured algorithm.
func (p *Pool[T]) Algorithm() Algorithm { return p.cfg.Algorithm }

// ConsumerAccessList returns the stealing order of consumer i, nearest
// first (self excluded) — diagnostic insight into the NUMA policy.
func (p *Pool[T]) ConsumerAccessList(i int) []int {
	list := p.placement.ConsumerAccessList(i)
	out := make([]int, 0, len(list)-1)
	for _, c := range list {
		if c != i {
			out = append(out, c)
		}
	}
	return out
}

// ProducerAccessList returns the insertion order of producer i, nearest
// consumer first.
func (p *Pool[T]) ProducerAccessList(i int) []int {
	return append([]int(nil), p.placement.ProducerAccessList(i)...)
}
