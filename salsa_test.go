package salsa_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"salsa"
)

type job struct {
	producer int
	seq      int
}

var allAlgorithms = []salsa.Algorithm{
	salsa.SALSA, salsa.SALSACAS, salsa.ConcBag, salsa.WSMSQ, salsa.WSLIFO,
	salsa.EDPool, salsa.WSCHUNKQ, salsa.WSBaskets,
}

func newPool(t testing.TB, alg salsa.Algorithm, producers, consumers, chunk int) *salsa.Pool[job] {
	t.Helper()
	p, err := salsa.New[job](salsa.Config{
		Producers:    producers,
		Consumers:    consumers,
		Algorithm:    alg,
		ChunkSize:    chunk,
		NUMANodes:    4,
		CoresPerNode: 4,
	})
	if err != nil {
		t.Fatalf("New(%v): %v", alg, err)
	}
	return p
}

// TestAllAlgorithmsSequential drains a single-threaded put/get sequence on
// every implementation, checking uniqueness, completeness and final
// emptiness.
func TestAllAlgorithmsSequential(t *testing.T) {
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newPool(t, alg, 2, 2, 16)
			const n = 500
			for i := 0; i < n; i++ {
				pool.Producer(i % 2).Put(&job{producer: i % 2, seq: i})
			}
			seen := make(map[int]bool, n)
			for i := 0; i < n; i++ {
				c := pool.Consumer(i % 2)
				j, ok := c.Get()
				if !ok {
					t.Fatalf("Get %d/%d reported empty", i, n)
				}
				if seen[j.seq] {
					t.Fatalf("task %d returned twice", j.seq)
				}
				seen[j.seq] = true
			}
			for ci := 0; ci < 2; ci++ {
				if _, ok := pool.Consumer(ci).Get(); ok {
					t.Fatalf("consumer %d found a task after drain", ci)
				}
			}
		})
	}
}

// TestAllAlgorithmsConcurrent hammers every implementation with concurrent
// producers and consumers and verifies no task is lost or duplicated.
func TestAllAlgorithmsConcurrent(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 4000
	)
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newPool(t, alg, producers, consumers, 32)
			var done atomic.Bool
			var pwg sync.WaitGroup
			for i := 0; i < producers; i++ {
				pwg.Add(1)
				go func(id int) {
					defer pwg.Done()
					p := pool.Producer(id)
					for s := 0; s < perProd; s++ {
						p.Put(&job{producer: id, seq: s})
					}
				}(i)
			}
			go func() { pwg.Wait(); done.Store(true) }()

			results := make([][]*job, consumers)
			var cwg sync.WaitGroup
			for i := 0; i < consumers; i++ {
				cwg.Add(1)
				go func(id int) {
					defer cwg.Done()
					c := pool.Consumer(id)
					for {
						// Snapshot done *before* the Get: a ⊥ whose
						// emptiness instant falls after all Puts have
						// completed is final; a ⊥ that merely precedes
						// a late Put is not.
						wasDone := done.Load()
						j, ok := c.Get()
						if ok {
							results[id] = append(results[id], j)
							continue
						}
						if wasDone {
							return
						}
					}
				}(i)
			}
			cwg.Wait()

			seen := make(map[job]bool, producers*perProd)
			for _, res := range results {
				for _, j := range res {
					if seen[*j] {
						t.Fatalf("%v: task %+v returned twice", alg, *j)
					}
					seen[*j] = true
				}
			}
			if len(seen) != producers*perProd {
				t.Fatalf("%v: lost tasks: got %d want %d", alg, len(seen), producers*perProd)
			}
		})
	}
}

// TestStatsAccounting sanity-checks the operation census: puts and gets
// must match the workload, and SALSA retrievals must be dominated by the
// CAS-free fast path.
func TestStatsAccounting(t *testing.T) {
	pool := newPool(t, salsa.SALSA, 1, 1, 64)
	p, c := pool.Producer(0), pool.Consumer(0)
	const n = 1000
	for i := 0; i < n; i++ {
		p.Put(&job{seq: i})
	}
	for i := 0; i < n; i++ {
		if _, ok := c.Get(); !ok {
			t.Fatalf("unexpected empty at %d", i)
		}
	}
	s := pool.Stats()
	if s.Puts != n {
		t.Errorf("Puts = %d, want %d", s.Puts, n)
	}
	if s.Gets != n {
		t.Errorf("Gets = %d, want %d", s.Gets, n)
	}
	if s.FastPath != n {
		t.Errorf("FastPath = %d, want %d (single consumer never loses its chunks)", s.FastPath, n)
	}
	if s.CAS != 0 {
		t.Errorf("CAS = %d, want 0 on the uncontended SALSA fast path", s.CAS)
	}
	if got := s.CASPerGet(); got != 0 {
		t.Errorf("CASPerGet = %v, want 0", got)
	}
}

// TestAccessListsAreNUMASorted verifies the policy wiring end to end: a
// producer's first-choice consumer must be on its own node.
func TestAccessListsAreNUMASorted(t *testing.T) {
	pool := newPool(t, salsa.SALSA, 8, 8, 64)
	for i := 0; i < 8; i++ {
		al := pool.ProducerAccessList(i)
		if len(al) != 8 {
			t.Fatalf("producer %d access list has %d entries", i, len(al))
		}
		first := pool.Consumer(al[0])
		prod := pool.Producer(i)
		if first.Node() != prod.Node() {
			t.Errorf("producer %d (node %d) prefers consumer %d (node %d); want same node",
				i, prod.Node(), first.ID(), first.Node())
		}
	}
}

func ExampleNew() {
	pool, err := salsa.New[job](salsa.Config{Producers: 1, Consumers: 1})
	if err != nil {
		panic(err)
	}
	pool.Producer(0).Put(&job{seq: 42})
	j, ok := pool.Consumer(0).Get()
	fmt.Println(j.seq, ok)
	// Output: 42 true
}
