package salsa

// Unit tests for the admission-control layer: token-bucket rate
// conformance and burst discipline under a virtual clock, token
// conservation under concurrent hammering (-race), the high-priority
// reserved lane, and the typed shed errors. End-to-end scenario coverage
// (thundering herds, shed-vs-queue under real load) lives in
// internal/loadgen and soak_test.go.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type admJob struct{ seq int }

// virtualBucket builds a bucket on an atomically advanced test clock.
func virtualBucket(rate float64, burst, reserve int) (*tokenBucket, *atomic.Int64) {
	var now atomic.Int64
	cfg := AdmissionConfig{
		Rate: rate, Burst: burst, HighReserve: reserve,
		now: func() int64 { return now.Load() },
	}
	return newTokenBucket(cfg), &now
}

// TestTokenBucketRateConformance drives 100 virtual seconds of 5x
// overload through a bucket and checks the long-run admit rate lands on
// the configured rate (plus the initial burst) within 1%.
func TestTokenBucketRateConformance(t *testing.T) {
	const (
		rate    = 1000.0
		burst   = 50
		seconds = 100
	)
	b, now := virtualBucket(rate, burst, 0)
	admits := 0
	for ms := 0; ms < seconds*1000; ms++ {
		now.Add(int64(time.Millisecond))
		for i := 0; i < 5; i++ { // 5000/s offered against 1000/s configured
			if b.take(ClassHigh, 1) {
				admits++
			}
		}
	}
	want := float64(rate*seconds + burst)
	if got := float64(admits); got < want*0.99 || got > want*1.01 {
		t.Fatalf("admitted %d tasks over %ds at rate %g (burst %d); want %.0f +/- 1%%",
			admits, seconds, rate, burst, want)
	}
}

// TestTokenBucketBurstCap parks the bucket idle for 1000 virtual seconds
// and then counts instantaneous admits: exactly Burst, never one more —
// idle time must not accumulate beyond the cap.
func TestTokenBucketBurstCap(t *testing.T) {
	const burst = 37
	b, now := virtualBucket(500, burst, 0)
	now.Add(int64(1000 * time.Second))
	admits := 0
	for i := 0; i < burst*3; i++ {
		if b.take(ClassHigh, 1) {
			admits++
		}
	}
	if admits != burst {
		t.Fatalf("instantaneous admits after long idle = %d, want exactly burst %d", admits, burst)
	}
}

// TestTokenBucketConcurrentNoMinting hammers one bucket from 8 goroutines
// under the real clock and bounds the total admits by rate*elapsed+burst:
// racing refills must never mint tokens that elapsed time did not earn.
func TestTokenBucketConcurrentNoMinting(t *testing.T) {
	const (
		rate  = 2000.0
		burst = 64
		procs = 8
	)
	b := newTokenBucket(AdmissionConfig{Rate: rate, Burst: burst})
	var (
		total atomic.Int64
		stop  atomic.Bool
		wg    sync.WaitGroup
	)
	start := time.Now()
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if b.take(ClassHigh, 1) {
					total.Add(1)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start) // upper bound: covers every take
	bound := rate*elapsed.Seconds() + burst + 1
	if got := float64(total.Load()); got > bound {
		t.Fatalf("concurrent admits %d exceed rate*elapsed+burst = %.1f (tokens minted under contention)",
			total.Load(), bound)
	}
	if total.Load() < burst {
		t.Fatalf("admitted %d < burst %d: bucket refused tokens it owned", total.Load(), burst)
	}
}

// TestTokenBucketPriorityReserve checks the reserved-lane arithmetic on a
// virtual clock: the low class drains the bucket only to the reserve
// floor, the high class drains it to zero.
func TestTokenBucketPriorityReserve(t *testing.T) {
	const (
		burst   = 10
		reserve = 4
	)
	b, now := virtualBucket(100, burst, reserve)

	lowAdmits := 0
	for i := 0; i < burst*2; i++ {
		if b.take(ClassLow, 1) {
			lowAdmits++
		}
	}
	if lowAdmits != burst-reserve {
		t.Fatalf("low-class admits from a full bucket = %d, want burst-reserve = %d", lowAdmits, burst-reserve)
	}
	highAdmits := 0
	for i := 0; i < burst; i++ {
		if b.take(ClassHigh, 1) {
			highAdmits++
		}
	}
	if highAdmits != reserve {
		t.Fatalf("high-class admits from the reserve = %d, want %d", highAdmits, reserve)
	}
	// One refilled token: low must still shed (floor), high must admit.
	now.Add(int64(10 * time.Millisecond)) // 1 token at 100/s
	if b.take(ClassLow, 1) {
		t.Fatal("low class admitted out of the reserve floor")
	}
	if !b.take(ClassHigh, 1) {
		t.Fatal("high class refused a refilled token")
	}
}

// TestLowFloodCannotStarveHigh floods a shared bucket with low-priority
// takes from 4 goroutines while a high-priority caller asks for one token
// every 5ms; the reserve must keep nearly every high ask admissible.
func TestLowFloodCannotStarveHigh(t *testing.T) {
	b := newTokenBucket(AdmissionConfig{Rate: 2000, Burst: 32, HighReserve: 16})
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				b.take(ClassLow, 1)
			}
		}()
	}
	const asks = 20
	highAdmits := 0
	for i := 0; i < asks; i++ {
		time.Sleep(5 * time.Millisecond) // 10 tokens refill per ask at 2000/s
		if b.take(ClassHigh, 1) {
			highAdmits++
		}
	}
	stop.Store(true)
	wg.Wait()
	if highAdmits < asks*3/4 {
		t.Fatalf("high class admitted %d/%d asks under a low-priority flood; reserve failed", highAdmits, asks)
	}
}

// TestAdmissionShedConvertsSaturation drives an undrained pool to chunk
// exhaustion through an AdmitShed layer: the put must come back as a
// typed ShedError matching both ErrShed and ErrSaturated, counted in the
// admission census — not silently force-expanded.
func TestAdmissionShedConvertsSaturation(t *testing.T) {
	pool, err := New[admJob](Config{
		Producers: 1, Consumers: 1,
		ChunkSize: 8, InitialChunks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	adm, err := NewAdmission(pool, AdmissionConfig{Policy: AdmitShed})
	if err != nil {
		t.Fatal(err)
	}
	ap := adm.Producer(0, ClassHigh)

	var shedErr error
	for i := 0; i < 10000; i++ {
		if err := ap.Put(&admJob{seq: i}); err != nil {
			shedErr = err
			break
		}
	}
	if shedErr == nil {
		t.Fatal("no shed after 10000 puts into an undrained pool with 8-task chunks")
	}
	if !errors.Is(shedErr, ErrShed) {
		t.Fatalf("shed error %v does not match ErrShed", shedErr)
	}
	if !errors.Is(shedErr, ErrSaturated) {
		t.Fatalf("saturation shed %v does not match ErrSaturated", shedErr)
	}
	var se *ShedError
	if !errors.As(shedErr, &se) || se.Reason != ShedSaturated || se.Class != ClassHigh {
		t.Fatalf("shed error %v is not a *ShedError{high, saturated}", shedErr)
	}
	c := adm.Counters()
	if c.Sheds["high"]["saturated"] == 0 {
		t.Fatalf("saturation shed not counted: %+v", c.Sheds)
	}
	if c.Admits["high"] == 0 {
		t.Fatal("admits before saturation not counted")
	}
	if got := pool.Stats().SaturatedPuts; got == 0 {
		t.Fatal("pool-level SaturatedPuts counter did not move")
	}
}

// TestAdmissionQueueTimeoutBounded: against the same saturated pool, the
// queue policy must give up within QueueTimeout (plus scheduling slack)
// and shed with ShedQueueTimeout — bounded blocking, never a hang.
func TestAdmissionQueueTimeoutBounded(t *testing.T) {
	pool, err := New[admJob](Config{
		Producers: 1, Consumers: 1,
		ChunkSize: 8, InitialChunks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	adm, err := NewAdmission(pool, AdmissionConfig{
		Policy:       AdmitQueue,
		QueueTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap := adm.Producer(0, ClassLow)

	var shedErr error
	start := time.Now()
	for i := 0; i < 10000; i++ {
		if err := ap.Put(&admJob{seq: i}); err != nil {
			shedErr = err
			break
		}
	}
	elapsed := time.Since(start)
	if shedErr == nil {
		t.Fatal("queue policy never shed against a permanently saturated pool")
	}
	var se *ShedError
	if !errors.As(shedErr, &se) || se.Reason != ShedQueueTimeout {
		t.Fatalf("expected a queue_timeout shed, got %v", shedErr)
	}
	if errors.Is(shedErr, ErrSaturated) {
		t.Fatalf("queue-timeout shed %v must not match ErrSaturated", shedErr)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("queue policy blocked %v; QueueTimeout bound is broken", elapsed)
	}
	if adm.Counters().Sheds["low"]["queue_timeout"] == 0 {
		t.Fatal("queue_timeout shed not counted")
	}
}

// TestAdmissionQueueWaitAdmits: a 1-token bucket under the queue policy
// forces the second put to wait for refill; it must admit (not shed) and
// be counted as a queue admit.
func TestAdmissionQueueWaitAdmits(t *testing.T) {
	pool, err := New[admJob](Config{Producers: 1, Consumers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	adm, err := NewAdmission(pool, AdmissionConfig{
		Rate: 100000, Burst: 1,
		Policy:       AdmitQueue,
		QueueTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap := adm.Producer(0, ClassHigh)
	for i := 0; i < 64; i++ {
		if err := ap.Put(&admJob{seq: i}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	c := adm.Counters()
	if c.Admits["high"] != 64 {
		t.Fatalf("admits = %d, want 64", c.Admits["high"])
	}
	if c.QueueAdmits == 0 {
		t.Fatal("no queue admits counted despite a 1-token bucket")
	}
}

// TestAdmissionBatchPartialShed: a batch that saturates mid-way reports
// the admitted prefix length and sheds the suffix, and the admission
// census adds up to the offered total.
func TestAdmissionBatchPartialShed(t *testing.T) {
	pool, err := New[admJob](Config{
		Producers: 1, Consumers: 1,
		ChunkSize: 8, InitialChunks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	adm, err := NewAdmission(pool, AdmissionConfig{Policy: AdmitShed})
	if err != nil {
		t.Fatal(err)
	}
	ap := adm.Producer(0, ClassLow)

	const offered = 4096
	batch := make([]*admJob, 64)
	accepted, shed := 0, 0
	for i := 0; i < offered/len(batch); i++ {
		for j := range batch {
			batch[j] = &admJob{seq: i*len(batch) + j}
		}
		n, err := ap.PutBatch(batch)
		accepted += n
		if err != nil {
			shed += len(batch) - n
			if !errors.Is(err, ErrShed) {
				t.Fatalf("batch shed error %v does not match ErrShed", err)
			}
		}
	}
	if shed == 0 {
		t.Fatal("no batch suffix was ever shed against 8-task chunks")
	}
	c := adm.Counters()
	if got := c.Admits["low"] + c.Sheds["low"]["saturated"]; got != offered {
		t.Fatalf("census %d admits + %d sheds != %d offered",
			c.Admits["low"], c.Sheds["low"]["saturated"], offered)
	}
	if int64(accepted) != c.Admits["low"] {
		t.Fatalf("caller saw %d accepted, census says %d", accepted, c.Admits["low"])
	}
}

// TestNewAdmissionValidation: the config validators reject nonsense.
func TestNewAdmissionValidation(t *testing.T) {
	pool, err := New[admJob](Config{Producers: 1, Consumers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := NewAdmission(pool, AdmissionConfig{Rate: -1}); err == nil {
		t.Fatal("negative Rate accepted")
	}
	if _, err := NewAdmission(pool, AdmissionConfig{Rate: 10, Burst: 5, HighReserve: 5}); err == nil {
		t.Fatal("HighReserve == Burst accepted (low class could never admit)")
	}
	if _, err := NewAdmission(pool, AdmissionConfig{Rate: 10, Burst: -1}); err == nil {
		t.Fatal("negative Burst accepted")
	}
}
