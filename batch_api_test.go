package salsa_test

import (
	"sync"
	"testing"

	"salsa"
)

// TestBatchRoundTripAllAlgorithms exercises PutBatch/GetBatch on every
// substrate. SALSA runs the native amortized paths; the others go through
// the generic per-task fallback — either way the batched calls must be
// semantically equivalent to per-task Put/Get: no task lost, none
// duplicated.
func TestBatchRoundTripAllAlgorithms(t *testing.T) {
	const (
		producers = 2
		consumers = 2
		perProd   = 500
		batch     = 32 // spans several size-8 chunks per call
	)
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newPool(t, alg, producers, consumers, 8)

			var pwg sync.WaitGroup
			for pi := 0; pi < producers; pi++ {
				pwg.Add(1)
				go func(pi int) {
					defer pwg.Done()
					p := pool.Producer(pi)
					for s := 0; s < perProd; s += batch {
						n := batch
						if s+n > perProd {
							n = perProd - s
						}
						buf := make([]*job, n)
						for i := range buf {
							buf[i] = &job{producer: pi, seq: s + i}
						}
						p.PutBatch(buf)
					}
				}(pi)
			}
			pwg.Wait()

			var mu sync.Mutex
			seen := make(map[[2]int]bool)
			var cwg sync.WaitGroup
			for ci := 0; ci < consumers; ci++ {
				cwg.Add(1)
				go func(ci int) {
					defer cwg.Done()
					c := pool.Consumer(ci)
					defer c.Close()
					dst := make([]*job, batch)
					for {
						n := c.GetBatch(dst)
						if n == 0 {
							return // linearizable empty: production is done
						}
						mu.Lock()
						for _, j := range dst[:n] {
							k := [2]int{j.producer, j.seq}
							if seen[k] {
								t.Errorf("duplicate task %v", k)
							}
							seen[k] = true
						}
						mu.Unlock()
					}
				}(ci)
			}
			cwg.Wait()
			if len(seen) != producers*perProd {
				t.Fatalf("drained %d of %d tasks", len(seen), producers*perProd)
			}
		})
	}
}

// TestGetBatchEmptySemantics: GetBatch and TryGetBatch return 0 on an
// empty pool (the same contract as Get's ok=false / TryGet), and a batch
// larger than the pool's content returns the partial count.
func TestGetBatchEmptySemantics(t *testing.T) {
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newPool(t, alg, 1, 1, 8)
			c := pool.Consumer(0)
			dst := make([]*job, 16)
			if n := c.TryGetBatch(dst); n != 0 {
				t.Fatalf("TryGetBatch on empty pool = %d", n)
			}
			if n := c.GetBatch(dst); n != 0 {
				t.Fatalf("GetBatch on empty pool = %d", n)
			}
			pool.Producer(0).PutBatch([]*job{{seq: 0}, {seq: 1}, {seq: 2}})
			if n := c.GetBatch(dst); n != 3 {
				t.Fatalf("GetBatch = %d, want the partial fill 3", n)
			}
			// Pools are unordered in general (WS-LIFO reverses, ED-Pool
			// scatters): check the set, not the sequence.
			got := map[int]bool{}
			for _, j := range dst[:3] {
				got[j.seq] = true
			}
			if len(got) != 3 || !got[0] || !got[1] || !got[2] {
				t.Fatalf("GetBatch returned %v, want {0,1,2}", got)
			}
			if n := c.GetBatch(dst); n != 0 {
				t.Fatalf("GetBatch after drain = %d", n)
			}
		})
	}
}

// TestBatchDegenerateSizes: empty and single-element batches behave like
// no-ops and plain Put/Get respectively, and GetBatch into a zero-length
// dst returns 0 without touching the pool.
func TestBatchDegenerateSizes(t *testing.T) {
	pool := newPool(t, salsa.SALSA, 1, 1, 8)
	p, c := pool.Producer(0), pool.Consumer(0)
	p.PutBatch(nil)
	p.PutBatch([]*job{})
	if n := c.TryGetBatch(nil); n != 0 {
		t.Fatalf("TryGetBatch(nil) = %d", n)
	}
	p.PutBatch([]*job{{seq: 42}})
	if n := c.GetBatch(make([]*job, 0)); n != 0 {
		t.Fatalf("GetBatch(empty dst) = %d", n)
	}
	j, ok := c.Get()
	if !ok || j.seq != 42 {
		t.Fatalf("Get after zero-length GetBatch = %v,%v", j, ok)
	}
}

// TestBatchInteropWithSingleOps mixes batched producers with single-task
// consumers and vice versa: the batch API is a view over the same pool,
// not a separate channel.
func TestBatchInteropWithSingleOps(t *testing.T) {
	for _, alg := range []salsa.Algorithm{salsa.SALSA, salsa.SALSACAS, salsa.WSMSQ} {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newPool(t, alg, 1, 1, 8)
			p, c := pool.Producer(0), pool.Consumer(0)
			const n = 100
			buf := make([]*job, n)
			for i := range buf {
				buf[i] = &job{seq: i}
			}
			p.PutBatch(buf)
			// Drain the batched insert with single-task Gets.
			for i := 0; i < n; i++ {
				j, ok := c.Get()
				if !ok {
					t.Fatalf("Get %d failed after PutBatch", i)
				}
				if alg == salsa.SALSA && j.seq != i {
					t.Fatalf("FIFO order broken: got %d at %d", j.seq, i)
				}
			}
			// And the reverse: single Puts drained by one GetBatch.
			for i := 0; i < n; i++ {
				p.Put(&job{seq: i})
			}
			dst := make([]*job, n)
			got := 0
			for got < n {
				k := c.GetBatch(dst[got:])
				if k == 0 {
					t.Fatalf("GetBatch dried up at %d of %d", got, n)
				}
				got += k
			}
		})
	}
}

// TestPutBatchPanicsOnNilTask: a nil element anywhere in the batch is a
// caller bug, caught like Put(nil).
func TestPutBatchPanicsOnNilTask(t *testing.T) {
	pool := newPool(t, salsa.SALSA, 1, 1, 8)
	defer func() {
		if recover() == nil {
			t.Error("nil task in batch accepted")
		}
	}()
	pool.Producer(0).PutBatch([]*job{{seq: 0}, nil, {seq: 2}})
}
