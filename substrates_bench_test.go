package salsa_test

import (
	"testing"

	"salsa/internal/basketsqueue"
	"salsa/internal/lifostack"
	"salsa/internal/msqueue"
	"salsa/internal/segqueue"
)

// BenchmarkSubstrateQueues compares the raw FIFO/LIFO substrates this
// repository builds SALSA's baselines on, single-threaded enqueue+dequeue
// pairs — a floor-cost census for interpreting the pool-level numbers.
func BenchmarkSubstrateQueues(b *testing.B) {
	payload := 42

	b.Run("msqueue", func(b *testing.B) {
		q := msqueue.New[*int]()
		for i := 0; i < b.N; i++ {
			q.Enqueue(&payload)
			if _, ok := q.Dequeue(); !ok {
				b.Fatal("lost element")
			}
		}
	})
	b.Run("lifostack", func(b *testing.B) {
		s := lifostack.New[*int]()
		for i := 0; i < b.N; i++ {
			s.Push(&payload)
			if _, ok := s.Pop(); !ok {
				b.Fatal("lost element")
			}
		}
	})
	b.Run("basketsqueue", func(b *testing.B) {
		q := basketsqueue.New[*int]()
		for i := 0; i < b.N; i++ {
			q.Enqueue(&payload)
			if _, ok := q.Dequeue(); !ok {
				b.Fatal("lost element")
			}
		}
	})
	b.Run("segqueue", func(b *testing.B) {
		q := segqueue.New[int](0)
		for i := 0; i < b.N; i++ {
			q.Enqueue(&payload)
			if _, ok := q.Dequeue(); !ok {
				b.Fatal("lost element")
			}
		}
	})
}

// BenchmarkSubstrateQueuesParallel runs the same pairs from all Ps — the
// contended regime where the shared-cache-line costs show.
func BenchmarkSubstrateQueuesParallel(b *testing.B) {
	payload := 42
	b.Run("msqueue", func(b *testing.B) {
		q := msqueue.New[*int]()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Enqueue(&payload)
				q.Dequeue()
			}
		})
	})
	b.Run("segqueue", func(b *testing.B) {
		q := segqueue.New[int](0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Enqueue(&payload)
				q.Dequeue()
			}
		})
	})
	b.Run("basketsqueue", func(b *testing.B) {
		q := basketsqueue.New[*int]()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				q.Enqueue(&payload)
				q.Dequeue()
			}
		})
	})
}
