package salsa

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"salsa/internal/backoff"
	"salsa/internal/telemetry"
)

// This file is the admission-control layer: a policy front end over the
// typed ErrSaturated backpressure that TryPut/TryPutBatch expose. The pool
// itself stays policy-free — it reports saturation and nothing else — while
// an Admission wrapper decides, per producer and per priority class,
// whether an insert is admitted, queued, or shed, and counts every decision
// so overload is measured instead of silently retried. See DESIGN.md §15.

// ErrShed is the sentinel matched (via errors.Is) by every admission
// rejection, whatever its reason. The concrete error is always a
// *ShedError carrying the class and reason; saturation sheds additionally
// match ErrSaturated, so callers that already handle the pool's raw
// backpressure keep working behind an admission layer.
var ErrShed = errors.New("salsa: admission control shed the task")

// ShedReason says why admission control rejected a task.
type ShedReason int

const (
	// ShedRate: the producer's token bucket was empty (or, for a
	// low-priority task, drained to the high-priority reserve floor).
	ShedRate ShedReason = iota
	// ShedSaturated: the bucket admitted the task but every reachable
	// consumer pool refused the insert — the pool's ErrSaturated,
	// converted into a measured shed instead of a silent force-expand.
	ShedSaturated
	// ShedQueueTimeout: the queue policy waited QueueTimeout without the
	// task becoming admittable and shed it rather than block forever.
	ShedQueueTimeout

	numShedReasons
)

// String returns the reason's metric label ("rate", "saturated",
// "queue_timeout").
func (r ShedReason) String() string {
	switch r {
	case ShedRate:
		return "rate"
	case ShedSaturated:
		return "saturated"
	case ShedQueueTimeout:
		return "queue_timeout"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// ShedError is the typed rejection returned by AdmittedProducer's Put and
// PutBatch. It matches ErrShed always, and ErrSaturated exactly when the
// shed was a converted pool-saturation refusal.
type ShedError struct {
	Class  PriorityClass
	Reason ShedReason
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("salsa: admission shed (%s class, %s)", e.Class, e.Reason)
}

// Is matches ErrShed for every shed, plus ErrSaturated for saturation
// sheds, so errors.Is works with either sentinel.
func (e *ShedError) Is(target error) bool {
	if target == ErrShed {
		return true
	}
	return e.Reason == ShedSaturated && target == ErrSaturated
}

// PriorityClass labels a producer's traffic class. The admission layer
// implements priority as a reserved lane inside each producer's token
// bucket: ClassHigh may spend every token, ClassLow must leave
// AdmissionConfig.HighReserve tokens untouched, so a saturating
// low-priority flood can never starve high-priority admits.
type PriorityClass int

const (
	// ClassHigh is latency-sensitive traffic; it may draw the bucket to
	// zero, including the reserved lane.
	ClassHigh PriorityClass = iota
	// ClassLow is bulk traffic; it sheds (or queues) once the bucket
	// drains to the reserve floor.
	ClassLow

	numClasses
)

// String returns the class's metric label ("high", "low").
func (c PriorityClass) String() string {
	switch c {
	case ClassHigh:
		return "high"
	case ClassLow:
		return "low"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// AdmissionPolicy selects what an AdmittedProducer does when a task is not
// immediately admittable.
type AdmissionPolicy int

const (
	// AdmitShed rejects immediately with a *ShedError — the open-loop
	// policy: overload surfaces as measured sheds, never as added
	// producer latency.
	AdmitShed AdmissionPolicy = iota
	// AdmitQueue waits (bounded spin→yield→sleep backoff) until the task
	// is admitted or QueueTimeout elapses, then sheds with
	// ShedQueueTimeout — the closed-loop policy: overload surfaces as
	// bounded producer-side latency.
	AdmitQueue
)

// AdmissionConfig configures NewAdmission.
type AdmissionConfig struct {
	// Rate is the sustained admission rate per producer bucket, in
	// tasks/second. Zero disables rate limiting (saturation sheds still
	// apply). Negative is invalid.
	Rate float64

	// Burst is the bucket capacity in tasks — the largest instantaneous
	// burst a fully idle producer can admit. Defaults to max(1,
	// Rate/10): a 100 ms ration. Ignored when Rate is zero.
	Burst int

	// HighReserve reserves that many tokens of each bucket for ClassHigh:
	// ClassLow admits only while more than HighReserve tokens would
	// remain. Must be < Burst. Zero means no reserved lane.
	HighReserve int

	// Policy is the not-admittable behaviour: AdmitShed (default) or
	// AdmitQueue.
	Policy AdmissionPolicy

	// QueueTimeout bounds an AdmitQueue wait; past it the task is shed
	// with ShedQueueTimeout. Defaults to 10ms. Ignored under AdmitShed.
	QueueTimeout time.Duration

	// now overrides the bucket clock (monotonic nanoseconds) in tests.
	// Production code leaves it nil.
	now func() int64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Rate > 0 && c.Burst == 0 {
		c.Burst = int(c.Rate/10) + 1
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = 10 * time.Millisecond
	}
	return c
}

// tokenBucket is one producer's refillable admission budget. A mutex (not
// the pool's single-writer discipline) because the bucket is a
// control-plane object shared by that producer's class handles — and the
// invariant that concurrent callers can never mint extra tokens must hold
// regardless of who calls: the refill is computed under the lock from the
// shared clock, so two racing takes can never both credit the same
// elapsed time.
type tokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	reserve float64 // floor ClassLow may not draw below
	tokens  float64
	last    int64 // nanos of the last refill
	now     func() int64
}

func newTokenBucket(cfg AdmissionConfig) *tokenBucket {
	now := cfg.now
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	b := &tokenBucket{
		rate:    cfg.Rate,
		burst:   float64(cfg.Burst),
		reserve: float64(cfg.HighReserve),
		now:     now,
	}
	b.tokens = b.burst // start full: an idle producer owns its burst
	b.last = now()
	return b
}

// take attempts to spend n tokens for the given class.
func (b *tokenBucket) take(class PriorityClass, n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	if dt := t - b.last; dt > 0 {
		b.tokens += b.rate * float64(dt) / 1e9
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
	floor := 0.0
	if class != ClassHigh {
		floor = b.reserve
	}
	if b.tokens-n < floor {
		return false
	}
	b.tokens -= n
	return true
}

// refund returns n unspent tokens (a partially refused batch), never
// exceeding the burst cap.
func (b *tokenBucket) refund(n float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += n
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// AdmissionCounters is a snapshot of the layer's decision census, by
// class (and, for sheds, by reason).
type AdmissionCounters struct {
	// Admits[class] counts tasks admitted into the pool.
	Admits map[string]int64
	// Sheds[class][reason] counts rejected tasks.
	Sheds map[string]map[string]int64
	// QueueAdmits counts AdmitQueue Put/PutBatch calls that waited at
	// least one backoff pause before fully admitting.
	QueueAdmits int64
}

// admCell is one (producer, class) row of counters. Atomic adds — the
// admission path already serializes on the producer's bucket mutex, but
// Counters readers race the writers, and both class handles of a producer
// are allowed to live on one goroutine without further coordination.
// Padded so producers' cells never false-share.
type admCell struct {
	admits      atomic.Int64
	sheds       [numShedReasons]atomic.Int64
	queueAdmits atomic.Int64
	_           [64]byte
}

// Admission is the admission-control layer for one pool. Construct with
// NewAdmission, then hand each producing goroutine an AdmittedProducer per
// (producer id, class).
type Admission[T any] struct {
	pool    *Pool[T]
	cfg     AdmissionConfig
	buckets []*tokenBucket // nil when Rate == 0
	cells   []*[numClasses]admCell
}

// NewAdmission wraps pool with an admission-control layer: one token
// bucket per producer id, a ClassHigh reserved lane of HighReserve tokens,
// and the configured shed-vs-queue policy. The pool remains usable
// directly — admission applies only to inserts that go through
// AdmittedProducer handles.
func NewAdmission[T any](pool *Pool[T], cfg AdmissionConfig) (*Admission[T], error) {
	cfg = cfg.withDefaults()
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("salsa: admission Rate must be >= 0 (got %g)", cfg.Rate)
	}
	if cfg.Burst < 0 || cfg.HighReserve < 0 {
		return nil, fmt.Errorf("salsa: Burst and HighReserve must be >= 0")
	}
	if cfg.Rate > 0 && cfg.HighReserve >= cfg.Burst {
		return nil, fmt.Errorf("salsa: HighReserve %d must be below Burst %d (the low class could never admit)",
			cfg.HighReserve, cfg.Burst)
	}
	a := &Admission[T]{
		pool:  pool,
		cfg:   cfg,
		cells: make([]*[numClasses]admCell, pool.NumProducers()),
	}
	for i := range a.cells {
		a.cells[i] = new([numClasses]admCell)
	}
	if cfg.Rate > 0 {
		a.buckets = make([]*tokenBucket, pool.NumProducers())
		for i := range a.buckets {
			a.buckets[i] = newTokenBucket(cfg)
		}
	}
	return a, nil
}

// Pool returns the wrapped pool.
func (a *Admission[T]) Pool() *Pool[T] { return a.pool }

// Producer returns an admitted-producer handle for producer id i in the
// given class. Both class handles of one id share the id's token bucket
// (the reserved-lane design) and the underlying Producer handle, so they
// must be driven by the same goroutine.
func (a *Admission[T]) Producer(i int, class PriorityClass) *AdmittedProducer[T] {
	if class < 0 || class >= numClasses {
		panic(fmt.Sprintf("salsa: unknown priority class %d", class))
	}
	return &AdmittedProducer[T]{
		adm:   a,
		p:     a.pool.Producer(i),
		cell:  &a.cells[i][class],
		class: class,
	}
}

// Counters snapshots the admission census. Safe to call concurrently with
// admissions; like the pool's own counters, a reader may lag in-flight
// increments but never sees torn values.
func (a *Admission[T]) Counters() AdmissionCounters {
	c := AdmissionCounters{
		Admits: map[string]int64{},
		Sheds:  map[string]map[string]int64{},
	}
	for class := PriorityClass(0); class < numClasses; class++ {
		c.Admits[class.String()] = 0
	}
	for _, classes := range a.cells {
		for ci := range classes {
			cell := &classes[ci]
			class := PriorityClass(ci).String()
			c.Admits[class] += cell.admits.Load()
			c.QueueAdmits += cell.queueAdmits.Load()
			for ri := range cell.sheds {
				n := cell.sheds[ri].Load()
				if n == 0 {
					continue
				}
				m := c.Sheds[class]
				if m == nil {
					m = map[string]int64{}
					c.Sheds[class] = m
				}
				m[ShedReason(ri).String()] += n
			}
		}
	}
	return c
}

// TelemetrySnapshot implements telemetry.SnapshotSource: the wrapped
// pool's snapshot plus the admission decision census, so /metrics behind
// an admission layer carries the salsa_admission_* families.
func (a *Admission[T]) TelemetrySnapshot() TelemetrySnapshot {
	s := a.pool.TelemetrySnapshot()
	c := a.Counters()
	s.AdmissionAdmits = c.Admits
	s.AdmissionSheds = map[string]int64{}
	for class, reasons := range c.Sheds {
		for reason, n := range reasons {
			s.AdmissionSheds[class+"/"+reason] = n
		}
	}
	s.AdmissionQueueAdmits = c.QueueAdmits
	return s
}

// MetricsHandler returns an http.Handler exposing the wrapped pool's
// telemetry with the admission families included (Prometheus text at
// /metrics, JSON at /metrics.json).
func (a *Admission[T]) MetricsHandler() http.Handler {
	return telemetry.Handler(a, telemetry.HandlerOptions{})
}

// AdmittedProducer inserts tasks through the admission layer. Single
// goroutine per underlying producer id, like a Producer handle.
type AdmittedProducer[T any] struct {
	adm   *Admission[T]
	p     *Producer[T]
	cell  *admCell
	class PriorityClass
}

// Class returns the handle's priority class.
func (ap *AdmittedProducer[T]) Class() PriorityClass { return ap.class }

// ID returns the underlying producer id.
func (ap *AdmittedProducer[T]) ID() int { return ap.p.ID() }

// shedN records n rejected tasks and builds the typed error.
func (ap *AdmittedProducer[T]) shedN(reason ShedReason, n int64) error {
	ap.cell.sheds[reason].Add(n)
	return &ShedError{Class: ap.class, Reason: reason}
}

// Put inserts t through admission control. On success it returns nil; on
// rejection it returns a *ShedError (matching ErrShed, and ErrSaturated
// for saturation sheds) and the caller keeps ownership of t. Under
// AdmitQueue the call may block up to QueueTimeout.
func (ap *AdmittedProducer[T]) Put(t *T) error {
	_, err := ap.putBatch([]*T{t})
	return err
}

// PutBatch inserts ts through admission control and returns how many
// leading tasks were admitted. The bucket is charged for the whole batch
// or not at all; a pool-saturation refusal of a suffix refunds its tokens
// and sheds the suffix. err is a *ShedError exactly when n < len(ts).
func (ap *AdmittedProducer[T]) PutBatch(ts []*T) (n int, err error) {
	return ap.putBatch(ts)
}

func (ap *AdmittedProducer[T]) putBatch(ts []*T) (int, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	var bk *tokenBucket
	if ap.adm.buckets != nil {
		bk = ap.adm.buckets[ap.p.ID()]
	}

	if ap.adm.cfg.Policy == AdmitShed {
		if bk != nil && !bk.take(ap.class, float64(len(ts))) {
			return 0, ap.shedN(ShedRate, int64(len(ts)))
		}
		n, perr := ap.p.TryPutBatch(ts)
		if n > 0 {
			ap.cell.admits.Add(int64(n))
		}
		if perr != nil {
			if bk != nil {
				bk.refund(float64(len(ts) - n))
			}
			return n, ap.shedN(ShedSaturated, int64(len(ts)-n))
		}
		return n, nil
	}

	// AdmitQueue: wait for tokens and pool room together, bounded by
	// QueueTimeout — the same spin→yield→sleep escalation as every
	// blocking path in the repo.
	deadline := time.Now().Add(ap.adm.cfg.QueueTimeout)
	var bo backoff.Backoff
	waited := false
	charged := bk == nil // no bucket = nothing to charge
	done := 0
	for {
		if !charged {
			charged = bk.take(ap.class, float64(len(ts)-done))
		}
		if charged {
			n, perr := ap.p.TryPutBatch(ts[done:])
			if n > 0 {
				ap.cell.admits.Add(int64(n))
				done += n
			}
			if perr == nil {
				if waited {
					ap.cell.queueAdmits.Add(1)
				}
				return len(ts), nil
			}
			// Saturated: the accepted prefix stays admitted; the
			// suffix's tokens stay spent (they will be retried against
			// the pool, not the bucket) until the deadline refund.
		}
		if time.Now().After(deadline) {
			remaining := len(ts) - done
			if charged && bk != nil {
				bk.refund(float64(remaining))
			}
			return done, ap.shedN(ShedQueueTimeout, int64(remaining))
		}
		waited = true
		bo.Pause()
	}
}
