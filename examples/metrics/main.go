// Metrics: running a pool with the telemetry subsystem on. The pool serves
// Prometheus-text and JSON metrics over HTTP while producers and consumers
// hammer it; the program then scrapes its own endpoint and asserts the
// counters moved — the same scrape a real Prometheus would perform.
//
// Enabling Config.Metrics costs no atomic read-modify-write anywhere in the
// pool: the collector follows the same single-writer counter discipline as
// the operation census, and the only fast-path overhead is two clock reads
// per operation for the latency histograms.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"salsa"
)

type Job struct{ ID int }

func main() {
	const (
		producers = 4
		consumers = 4
		jobsPer   = 25_000
	)
	pool, err := salsa.New[Job](salsa.Config{
		Producers: producers,
		Consumers: consumers,
		Metrics:   true, // collector + latency histograms on
	})
	if err != nil {
		panic(err)
	}

	// Port 0 picks a free port; Addr() reports it. A real deployment
	// would pass ":9090" and point Prometheus at it.
	srv, err := pool.ServeMetrics("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("serving metrics on http://%s/metrics\n", srv.Addr())

	var produced sync.WaitGroup
	for p := 0; p < producers; p++ {
		produced.Add(1)
		go func(p int) {
			defer produced.Done()
			h := pool.Producer(p)
			for i := 0; i < jobsPer; i++ {
				h.Put(&Job{ID: p*jobsPer + i})
			}
		}(p)
	}
	var allProduced atomic.Bool
	go func() { produced.Wait(); allProduced.Store(true) }()

	var done sync.WaitGroup
	for c := 0; c < consumers; c++ {
		done.Add(1)
		go func(c int) {
			defer done.Done()
			h := pool.Consumer(c)
			defer h.Close()
			for {
				finished := allProduced.Load()
				if _, ok := h.Get(); ok {
					continue
				}
				if finished {
					return
				}
			}
		}(c)
	}
	done.Wait()

	// Scrape our own endpoint, exactly as Prometheus would.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		panic(err)
	}
	text := string(body)

	// The scripted assertion: the scrape must show the work that just
	// happened — non-zero gets, a well-formed histogram, and the
	// chunk-pool occupancy gauge.
	total := int64(producers * jobsPer)
	var gets int64
	for _, line := range strings.Split(text, "\n") {
		if n, err := fmt.Sscanf(line, "salsa_gets_total %d", &gets); n == 1 && err == nil {
			break
		}
	}
	if gets != total {
		fmt.Fprintf(os.Stderr, "FAIL: scrape reports salsa_gets_total %d, want %d\n", gets, total)
		os.Exit(1)
	}
	for _, want := range []string{
		"salsa_get_latency_seconds_bucket{le=\"+Inf\"}",
		"salsa_get_latency_seconds_count",
		"salsa_chunk_pool_spares{consumer=\"0\"}",
		"salsa_checkempty_rounds_total{consumer=",
	} {
		if !strings.Contains(text, want) {
			fmt.Fprintf(os.Stderr, "FAIL: scrape missing %q\n", want)
			os.Exit(1)
		}
	}

	snap := pool.TelemetrySnapshot()
	fmt.Printf("scrape ok: salsa_gets_total %d, get p50 %v p99 %v, %d steals\n",
		gets, snap.Ops.GetLatency.P50(), snap.Ops.GetLatency.P99(), snap.Ops.Steals)
}
