// Pipeline: two salsa pools chained into a decode → transform pipeline, the
// many-producers/many-consumers regime of Figure 1.4(b). Stage-1 workers
// consume raw records from the ingest pool and *produce* decoded records
// into the second pool — each worker holds a Consumer handle on one pool
// and a Producer handle on the next, showing how handles compose.
//
//	ingest (P0..P1) ──pool A──► decode (W0..W2) ──pool B──► transform (T0..T2)
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"salsa"
)

// Raw is an undecoded input record.
type Raw struct {
	ID   int
	Blob [16]byte
}

// Record is a decoded record flowing through stage 2.
type Record struct {
	ID       int
	Checksum uint32
}

const (
	ingesters    = 2
	decoders     = 3
	transformers = 3
	records      = 50_000
)

func main() {
	poolA, err := salsa.New[Raw](salsa.Config{Producers: ingesters, Consumers: decoders})
	if err != nil {
		panic(err)
	}
	// Stage-2 pool: the decoders are its producers.
	poolB, err := salsa.New[Record](salsa.Config{Producers: decoders, Consumers: transformers})
	if err != nil {
		panic(err)
	}

	var ingested atomic.Int64
	var ingestDone, decodeDone atomic.Bool

	// Stage 0: ingest.
	var iwg sync.WaitGroup
	for i := 0; i < ingesters; i++ {
		iwg.Add(1)
		go func(i int) {
			defer iwg.Done()
			h := poolA.Producer(i)
			for {
				n := int(ingested.Add(1))
				if n > records {
					return
				}
				r := &Raw{ID: n}
				for b := range r.Blob {
					r.Blob[b] = byte(n >> (b % 8))
				}
				h.Put(r)
			}
		}(i)
	}
	go func() { iwg.Wait(); ingestDone.Store(true) }()

	// Stage 1: decode. Consumer on pool A, producer on pool B.
	var decoded atomic.Int64
	var dwg sync.WaitGroup
	for d := 0; d < decoders; d++ {
		dwg.Add(1)
		go func(d int) {
			defer dwg.Done()
			in := poolA.Consumer(d)
			defer in.Close()
			out := poolB.Producer(d)
			for {
				finished := ingestDone.Load()
				raw, ok := in.Get()
				if !ok {
					if finished {
						return
					}
					continue
				}
				var sum uint32
				for _, b := range raw.Blob {
					sum = sum*31 + uint32(b)
				}
				out.Put(&Record{ID: raw.ID, Checksum: sum})
				decoded.Add(1)
			}
		}(d)
	}
	go func() { dwg.Wait(); decodeDone.Store(true) }()

	// Stage 2: transform.
	var transformed atomic.Int64
	var sumAll atomic.Uint64
	var twg sync.WaitGroup
	for t := 0; t < transformers; t++ {
		twg.Add(1)
		go func(t int) {
			defer twg.Done()
			h := poolB.Consumer(t)
			defer h.Close()
			for {
				finished := decodeDone.Load()
				rec, ok := h.Get()
				if !ok {
					if finished {
						return
					}
					continue
				}
				sumAll.Add(uint64(rec.Checksum))
				transformed.Add(1)
			}
		}(t)
	}
	twg.Wait()

	fmt.Printf("ingested %d, decoded %d, transformed %d records\n",
		records, decoded.Load(), transformed.Load())
	fmt.Printf("checksum accumulator: %d\n", sumAll.Load())
	a, b := poolA.Stats(), poolB.Stats()
	fmt.Printf("stage A: %.4f CAS/task, %d steals; stage B: %.4f CAS/task, %d steals\n",
		a.CASPerGet(), a.Steals, b.CASPerGet(), b.Steals)
	if transformed.Load() != records {
		panic(fmt.Sprintf("pipeline lost records: %d of %d", transformed.Load(), records))
	}
}
