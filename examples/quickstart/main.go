// Quickstart: the smallest useful salsa program. Four producers hand work
// to four consumers through a SALSA pool; each side runs on its own
// goroutine with its own handle, and the run ends with a linearizable
// emptiness check.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"salsa"
)

// Job is whatever your application circulates; the pool moves pointers and
// never touches the payload.
type Job struct {
	ID     int
	Square int
}

func main() {
	const (
		producers = 4
		consumers = 4
		jobsPer   = 10_000
	)
	pool, err := salsa.New[Job](salsa.Config{
		Producers: producers,
		Consumers: consumers,
	})
	if err != nil {
		panic(err)
	}

	// Producers: each goroutine owns one Producer handle.
	var produced sync.WaitGroup
	for p := 0; p < producers; p++ {
		produced.Add(1)
		go func(p int) {
			defer produced.Done()
			h := pool.Producer(p)
			for i := 0; i < jobsPer; i++ {
				h.Put(&Job{ID: p*jobsPer + i})
			}
		}(p)
	}
	var allProduced atomic.Bool
	go func() { produced.Wait(); allProduced.Store(true) }()

	// Consumers: each goroutine owns one Consumer handle. Get returns
	// ok=false only when the pool was empty at some instant during the
	// call, so "empty after production finished" is a sound exit test.
	var done sync.WaitGroup
	var processed atomic.Int64
	for c := 0; c < consumers; c++ {
		done.Add(1)
		go func(c int) {
			defer done.Done()
			h := pool.Consumer(c)
			defer h.Close()
			for {
				finished := allProduced.Load()
				job, ok := h.Get()
				if ok {
					job.Square = job.ID * job.ID
					processed.Add(1)
					continue
				}
				if finished {
					return
				}
			}
		}(c)
	}
	done.Wait()

	stats := pool.Stats()
	fmt.Printf("processed %d jobs (want %d)\n", processed.Load(), producers*jobsPer)
	fmt.Printf("CAS per retrieval: %.4f (SALSA's fast path is CAS-free)\n", stats.CASPerGet())
	fmt.Printf("fast-path ratio:   %.4f\n", stats.FastPathRatio())
	fmt.Printf("chunk steals:      %d\n", stats.Steals)
}
