// NUMA: shows what the pool's NUMA awareness does, visibly. Two runs of the
// same workload on a synthetic 4-node machine — one with the default
// NUMA-aware placement/allocation, one with chunks forced onto node 0 — and
// a side-by-side comparison of local-vs-remote task transfers and access
// lists (the paper's Figure 1.1 and §1.6.5 story).
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"salsa"
)

type item struct{ n int }

const (
	producers = 4
	consumers = 4
	items     = 40_000
)

// homeTraffic counts task transfers per home node, fed by the pool's
// OnAccess hook (the same hook the Figure 1.7 interconnect simulator uses).
type homeTraffic [4]atomic.Int64

func run(alloc salsa.AllocationPolicy) (*salsa.Pool[item], salsa.Stats, *homeTraffic) {
	var traffic homeTraffic
	pool, err := salsa.New[item](salsa.Config{
		Producers:    producers,
		Consumers:    consumers,
		NUMANodes:    4,
		CoresPerNode: 2,
		Allocation:   alloc,
		OnAccess:     func(_, home int) { traffic[home].Add(1) },
	})
	if err != nil {
		panic(err)
	}
	var done atomic.Bool
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			h := pool.Producer(p)
			for i := 0; i < items/producers; i++ {
				h.Put(&item{n: i})
			}
		}(p)
	}
	go func() { pwg.Wait(); done.Store(true) }()
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			h := pool.Consumer(c)
			defer h.Close()
			for {
				finished := done.Load()
				if _, ok := h.Get(); ok {
					continue
				}
				if finished {
					return
				}
			}
		}(c)
	}
	cwg.Wait()
	return pool, pool.Stats(), &traffic
}

func main() {
	pool, local, localTraffic := run(salsa.AllocLocal)

	fmt.Println("access lists on the synthetic 4-node machine:")
	for p := 0; p < producers; p++ {
		fmt.Printf("  producer %d (node %d) inserts to consumers %v\n",
			p, pool.Producer(p).Node(), pool.ProducerAccessList(p))
	}
	for c := 0; c < consumers; c++ {
		fmt.Printf("  consumer %d (node %d) steals from consumers %v\n",
			c, pool.Consumer(c).Node(), pool.ConsumerAccessList(c))
	}

	_, central, centralTraffic := run(salsa.AllocCentral)

	frac := func(s salsa.Stats) float64 {
		total := s.LocalTransfers + s.RemoteTransfers
		if total == 0 {
			return 0
		}
		return float64(s.RemoteTransfers) / float64(total)
	}
	share := func(t *homeTraffic) [4]float64 {
		var total int64
		for i := range t {
			total += t[i].Load()
		}
		var out [4]float64
		for i := range t {
			out[i] = float64(t[i].Load()) / float64(total) * 100
		}
		return out
	}

	fmt.Println("\nmemory traffic per chunk home node (what each node's interconnect carries):")
	ls, cs := share(localTraffic), share(centralTraffic)
	fmt.Printf("  %-24s node0 %5.1f%%  node1 %5.1f%%  node2 %5.1f%%  node3 %5.1f%%\n",
		"NUMA-aware allocation:", ls[0], ls[1], ls[2], ls[3])
	fmt.Printf("  %-24s node0 %5.1f%%  node1 %5.1f%%  node2 %5.1f%%  node3 %5.1f%%\n",
		"central allocation:", cs[0], cs[1], cs[2], cs[3])
	fmt.Printf("\n(cross-node transfer share — NUMA-aware %.1f%%, central %.1f%% — reflects how\n"+
		" much chunk stealing this host's scheduling produced: %d and %d steals; on a\n"+
		" time-sliced machine a consumer that gets a long slice drains its neighbours.)\n",
		frac(local)*100, frac(central)*100, local.Steals, central.Steals)
	fmt.Println("\nUnder central allocation node 0's memory carries all traffic — the")
	fmt.Println("interconnect bottleneck of the paper's Figure 1.7. Run `salsa-bench fig1.7`")
	fmt.Println("to see the resulting saturation cliff on the simulated machine.")
}
