// Mapreduce: a word-count job built on two salsa pools — the map phase's
// document pool and the reduce phase's key-value pool. This is the
// many-to-many shuffle the paper's framework was designed for: every
// mapper produces for every reducer, the access lists route pairs to the
// nearest reducer, and chunk stealing rebalances when reducers finish
// their shards at different speeds.
//
//	documents ──pool A──► mappers ──pool B (shuffle)──► reducers ──merge──► counts
//
// The corpus is synthesized deterministically, so the run is offline and
// its output is verifiable: the expected counts are computed alongside.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"salsa"
)

// Document is a unit of map input.
type Document struct {
	ID    int
	Words []string
}

// Pair is one (word, count) emission travelling through the shuffle.
type Pair struct {
	Word  string
	Count int
}

const (
	feeders  = 1 // document producers
	mappers  = 3
	reducers = 3
	numDocs  = 2000
	docWords = 50
)

var vocabulary = []string{
	"lock", "free", "chunk", "steal", "pool", "numa", "task", "queue",
	"fence", "atomic", "cache", "line", "owner", "index", "balance",
}

func main() {
	docPool, err := salsa.New[Document](salsa.Config{Producers: feeders, Consumers: mappers})
	if err != nil {
		panic(err)
	}
	pairPool, err := salsa.New[Pair](salsa.Config{Producers: mappers, Consumers: reducers})
	if err != nil {
		panic(err)
	}

	// Synthesize the corpus and the ground truth.
	rng := rand.New(rand.NewSource(42))
	expected := map[string]int{}
	docs := make([]*Document, numDocs)
	for d := range docs {
		words := make([]string, docWords)
		for w := range words {
			words[w] = vocabulary[rng.Intn(len(vocabulary))]
			expected[words[w]]++
		}
		docs[d] = &Document{ID: d, Words: words}
	}

	// Feed documents.
	var fed atomic.Bool
	go func() {
		p := docPool.Producer(0)
		for _, d := range docs {
			p.Put(d)
		}
		fed.Store(true)
	}()

	// Map phase: consume documents, emit per-document word counts into
	// the shuffle pool. Each mapper is a consumer of pool A and a
	// producer of pool B.
	var mapped atomic.Bool
	var mwg sync.WaitGroup
	for m := 0; m < mappers; m++ {
		mwg.Add(1)
		go func(m int) {
			defer mwg.Done()
			in := docPool.Consumer(m)
			defer in.Close()
			out := pairPool.Producer(m)
			for {
				finished := fed.Load()
				doc, ok := in.Get()
				if !ok {
					if finished {
						return
					}
					continue
				}
				local := map[string]int{}
				for _, w := range doc.Words {
					local[w]++
				}
				for w, c := range local {
					out.Put(&Pair{Word: w, Count: c})
				}
			}
		}(m)
	}
	go func() { mwg.Wait(); mapped.Store(true) }()

	// Reduce phase: aggregate pairs into per-reducer partial sums.
	partials := make([]map[string]int, reducers)
	var rwg sync.WaitGroup
	for r := 0; r < reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			partials[r] = map[string]int{}
			in := pairPool.Consumer(r)
			defer in.Close()
			for {
				finished := mapped.Load()
				pair, ok := in.Get()
				if !ok {
					if finished {
						return
					}
					continue
				}
				partials[r][pair.Word] += pair.Count
			}
		}(r)
	}
	rwg.Wait()

	// Merge and verify against the ground truth.
	totals := map[string]int{}
	for _, p := range partials {
		for w, c := range p {
			totals[w] += c
		}
	}
	words := make([]string, 0, len(totals))
	for w := range totals {
		words = append(words, w)
	}
	sort.Strings(words)

	fmt.Printf("word counts over %d documents (%d words):\n", numDocs, numDocs*docWords)
	bad := 0
	for _, w := range words {
		marker := ""
		if totals[w] != expected[w] {
			marker = "  MISMATCH"
			bad++
		}
		fmt.Printf("  %-8s %6d%s\n", w, totals[w], marker)
	}
	if bad > 0 || len(totals) != len(expected) {
		panic("mapreduce produced wrong counts")
	}
	a, b := docPool.Stats(), pairPool.Stats()
	fmt.Printf("\nshuffle traffic: %d pairs, %d chunk steals; doc pool: %d steals\n",
		b.Puts, b.Steals, a.Steals)
	fmt.Printf("CAS per retrieval: docs %.4f, shuffle %.4f\n", a.CASPerGet(), b.CASPerGet())
}
