// Webcrawler: a producer-consumer workload with the imbalance the paper's
// introduction motivates. Fetcher threads (producers) discover links at
// wildly different rates — some sites are fast, some crawl — and parser
// threads (consumers) occasionally stall on a huge page. SALSA's
// producer-based balancing routes discoveries away from overloaded parsers,
// and chunk stealing keeps stalled parsers' backlogs from rotting.
//
// The "web" is simulated: pages are synthesized from a seeded RNG so the
// run is self-contained, deterministic, and offline.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"salsa"
)

// Page is a discovered page waiting to be parsed.
type Page struct {
	URL   string
	Depth int
	Size  int // bytes; drives simulated parse time
}

const (
	fetchers   = 3
	parsers    = 3
	maxPages   = 30_000
	slowParser = 0 // parser 0 stalls periodically
)

func main() {
	pool, err := salsa.New[Page](salsa.Config{
		Producers: fetchers,
		Consumers: parsers,
	})
	if err != nil {
		panic(err)
	}

	var discovered, parsed atomic.Int64
	var fetchersDone atomic.Bool

	// Fetchers: each produces pages at its own (very different) rate.
	var fwg sync.WaitGroup
	for f := 0; f < fetchers; f++ {
		fwg.Add(1)
		go func(f int) {
			defer fwg.Done()
			rng := rand.New(rand.NewSource(int64(f) + 1))
			h := pool.Producer(f)
			// Fetcher 0 is a firehose; fetcher 2 trickles.
			burst := []int{64, 8, 1}[f]
			for discovered.Load() < maxPages {
				for i := 0; i < burst; i++ {
					n := discovered.Add(1)
					if n > maxPages {
						return
					}
					h.Put(&Page{
						URL:   fmt.Sprintf("https://site-%d.example/page/%d", f, n),
						Depth: rng.Intn(6),
						Size:  1 << (8 + rng.Intn(8)),
					})
				}
				time.Sleep(time.Duration(f) * 100 * time.Microsecond)
			}
		}(f)
	}
	go func() { fwg.Wait(); fetchersDone.Store(true) }()

	// Parsers: parser 0 stalls for 2 ms every 500 pages (a GC pause, a
	// pathological page, a noisy neighbour — §1.1's "unexpected thread
	// stalls"). The others pick up its slack by stealing whole chunks.
	perParser := make([]int64, parsers)
	var pwg sync.WaitGroup
	for c := 0; c < parsers; c++ {
		pwg.Add(1)
		go func(c int) {
			defer pwg.Done()
			h := pool.Consumer(c)
			defer h.Close()
			var n int64
			for {
				finished := fetchersDone.Load()
				page, ok := h.Get()
				if !ok {
					if finished {
						perParser[c] = n
						return
					}
					continue
				}
				// "Parse": cost proportional to page size.
				sink := 0
				for i := 0; i < page.Size/256; i++ {
					sink += i
				}
				_ = sink
				n++
				parsed.Add(1)
				if c == slowParser && n%500 == 0 {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}(c)
	}
	pwg.Wait()

	stats := pool.Stats()
	fmt.Printf("crawled %d pages, parsed %d\n", stats.Puts, parsed.Load())
	for c, n := range perParser {
		tag := ""
		if c == slowParser {
			tag = "  (stalls injected)"
		}
		fmt.Printf("  parser %d handled %6d pages%s\n", c, n, tag)
	}
	fmt.Printf("chunk steals: %d — work migrated away from the slow parser\n", stats.Steals)
	fmt.Printf("produce() overload diversions: %d — balancing routed around backlogs\n", stats.ProduceFull)
	if parsed.Load() != maxPages {
		panic(fmt.Sprintf("lost pages: parsed %d of %d", parsed.Load(), maxPages))
	}
}
