package salsa_test

import (
	"fmt"
	"sync"
	"sync/atomic"

	"salsa"
)

type workItem struct {
	ID int
}

// ExamplePool demonstrates the standard lifecycle: fixed producer and
// consumer sets, one handle per goroutine, and the linearizable emptiness
// guarantee as the termination condition.
func ExamplePool() {
	pool, err := salsa.New[workItem](salsa.Config{Producers: 2, Consumers: 2})
	if err != nil {
		panic(err)
	}

	var produced sync.WaitGroup
	for p := 0; p < 2; p++ {
		produced.Add(1)
		go func(p int) {
			defer produced.Done()
			h := pool.Producer(p)
			for i := 0; i < 1000; i++ {
				h.Put(&workItem{ID: p*1000 + i})
			}
		}(p)
	}
	var allIn atomic.Bool
	go func() { produced.Wait(); allIn.Store(true) }()

	var handled atomic.Int64
	var done sync.WaitGroup
	for c := 0; c < 2; c++ {
		done.Add(1)
		go func(c int) {
			defer done.Done()
			h := pool.Consumer(c)
			defer h.Close()
			for {
				finished := allIn.Load()
				if _, ok := h.Get(); ok {
					handled.Add(1)
					continue
				}
				if finished {
					return // ⊥ after production ended: truly drained
				}
			}
		}(c)
	}
	done.Wait()
	fmt.Println("handled:", handled.Load())
	// Output: handled: 2000
}

// ExampleConfig_numaAware configures a pool for an explicit machine shape
// and inspects the NUMA-derived policy.
func ExampleConfig_numaAware() {
	pool, err := salsa.New[workItem](salsa.Config{
		Producers:    2,
		Consumers:    2,
		NUMANodes:    2,
		CoresPerNode: 2,
	})
	if err != nil {
		panic(err)
	}
	// Producer 0 runs on node 0; its access list starts with the
	// consumer on its own node.
	first := pool.ProducerAccessList(0)[0]
	fmt.Println(pool.Producer(0).Node() == pool.Consumer(first).Node())
	// Output: true
}

// ExampleConsumer_TryGet shows the non-blocking single-pass probe.
func ExampleConsumer_TryGet() {
	pool, _ := salsa.New[workItem](salsa.Config{Producers: 1, Consumers: 1})
	c := pool.Consumer(0)
	if _, ok := c.TryGet(); !ok {
		fmt.Println("nothing yet")
	}
	pool.Producer(0).Put(&workItem{ID: 1})
	if item, ok := c.TryGet(); ok {
		fmt.Println("got", item.ID)
	}
	// Output:
	// nothing yet
	// got 1
}

// ExamplePool_Stats reads the synchronization census after a workload —
// the metrics behind the paper's Figure 1.5(b).
func ExamplePool_Stats() {
	pool, _ := salsa.New[workItem](salsa.Config{Producers: 1, Consumers: 1})
	p, c := pool.Producer(0), pool.Consumer(0)
	for i := 0; i < 100; i++ {
		p.Put(&workItem{ID: i})
	}
	for i := 0; i < 100; i++ {
		c.Get()
	}
	s := pool.Stats()
	fmt.Printf("puts=%d gets=%d cas/task=%.0f fastpath=%.0f\n",
		s.Puts, s.Gets, s.CASPerGet(), s.FastPathRatio())
	// Output: puts=100 gets=100 cas/task=0 fastpath=1
}
