// Benchmarks regenerating the paper's evaluation figures (§1.6) as
// testing.B benchmarks — one benchmark family per figure, one
// sub-benchmark per curve/data-point. ns/op approximates the cost of one
// task transfer (put + get); the reported custom metrics carry the paper's
// synchronization story:
//
//	cas/task    CAS attempts per retrieved task   (Figure 1.5(b))
//	steals      successful chunk/task steals
//	fastpath    fraction of retrievals on SALSA's CAS-free fast path
//
// Run with:
//
//	go test -bench=. -benchmem
//
// For the full parameter sweeps and table output, use cmd/salsa-bench.
package salsa_test

import (
	"fmt"
	"testing"

	"salsa"
	"salsa/internal/workload"
)

// benchPairs is the thread scale used by the benchmarks; modest because
// testing.B multiplies every sub-benchmark by many calibration rounds.
const benchPairs = 4

func benchRun(b *testing.B, cfg workload.Config) {
	b.Helper()
	per := b.N / cfg.Producers
	if per < 1 {
		per = 1
	}
	res, err := workload.RunFixed(cfg, per)
	if err != nil {
		b.Fatal(err)
	}
	if res.Consumed != int64(per)*int64(cfg.Producers) {
		b.Fatalf("lost tasks: consumed %d of %d", res.Consumed, per*cfg.Producers)
	}
	b.ReportMetric(res.CASPerGet(), "cas/task")
	b.ReportMetric(float64(res.Stats.Steals), "steals")
	b.ReportMetric(res.Stats.FastPathRatio(), "fastpath")
}

var benchAlgorithms = []salsa.Algorithm{
	salsa.SALSA, salsa.SALSACAS, salsa.ConcBag, salsa.WSMSQ, salsa.WSLIFO,
}

// BenchmarkFig14a — Figure 1.4(a): N producers / N consumers, all five
// algorithms.
func BenchmarkFig14a(b *testing.B) {
	for _, alg := range benchAlgorithms {
		b.Run(alg.String(), func(b *testing.B) {
			benchRun(b, workload.Config{
				Algorithm: alg,
				Producers: benchPairs,
				Consumers: benchPairs,
			})
		})
	}
}

// BenchmarkFig14b — Figure 1.4(b): producer/consumer ratio sweep at a fixed
// total thread count.
func BenchmarkFig14b(b *testing.B) {
	ratios := []struct{ p, c int }{{1, 7}, {2, 6}, {4, 4}, {6, 2}, {7, 1}}
	for _, alg := range benchAlgorithms {
		for _, r := range ratios {
			b.Run(fmt.Sprintf("%s/%dp%dc", alg, r.p, r.c), func(b *testing.B) {
				benchRun(b, workload.Config{
					Algorithm: alg,
					Producers: r.p,
					Consumers: r.c,
				})
			})
		}
	}
}

// BenchmarkFig15 — Figures 1.5(a)+(b): single producer, N consumers; the
// cas/task metric is the 1.5(b) series.
func BenchmarkFig15(b *testing.B) {
	for _, alg := range benchAlgorithms {
		for _, consumers := range []int{1, 3, 7} {
			b.Run(fmt.Sprintf("%s/%dconsumers", alg, consumers), func(b *testing.B) {
				benchRun(b, workload.Config{
					Algorithm: alg,
					Producers: 1,
					Consumers: consumers,
				})
			})
		}
	}
}

// BenchmarkFig16 — Figure 1.6: producer-based balancing ablation.
func BenchmarkFig16(b *testing.B) {
	for _, v := range []struct {
		name      string
		alg       salsa.Algorithm
		balancing bool
	}{
		{"SALSA", salsa.SALSA, true},
		{"SALSA+CAS", salsa.SALSACAS, true},
		{"SALSA-no-balancing", salsa.SALSA, false},
		{"SALSA+CAS-no-balancing", salsa.SALSACAS, false},
	} {
		b.Run(v.name, func(b *testing.B) {
			benchRun(b, workload.Config{
				Algorithm:        v.alg,
				Producers:        1,
				Consumers:        benchPairs,
				DisableBalancing: !v.balancing,
			})
		})
	}
}

// BenchmarkFig17 — Figure 1.7: scheduling/allocation impact on the
// simulated NUMA interconnect. ns/op carries the modelled memory-system
// cost; central allocation queues on node 0's port.
func BenchmarkFig17(b *testing.B) {
	for _, v := range []struct {
		name      string
		placement salsa.Placement
		alloc     salsa.AllocationPolicy
	}{
		{"SALSA", salsa.PlacementInterleaved, salsa.AllocLocal},
		{"SALSA-OS-affinity", salsa.PlacementScattered, salsa.AllocLocal},
		{"SALSA-central-alloc", salsa.PlacementInterleaved, salsa.AllocCentral},
	} {
		b.Run(v.name, func(b *testing.B) {
			res, err := workload.Run(workload.Config{
				Algorithm:  salsa.SALSA,
				Producers:  benchPairs,
				Consumers:  benchPairs,
				Placement:  v.placement,
				Allocation: v.alloc,
				Simulate:   true,
			})
			if err != nil {
				b.Fatal(err)
			}
			// A timed (not op-counted) run: report the paper's metric
			// directly and neutralise ns/op.
			b.ReportMetric(res.ThroughputKTasksPerMs(), "ktasks/ms")
			b.ReportMetric(float64(res.SimStats.BusiestLinkWait.Milliseconds()), "linkwait-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkFig18 — Figure 1.8: throughput as a function of chunk size.
func BenchmarkFig18(b *testing.B) {
	for _, alg := range []salsa.Algorithm{salsa.SALSA, salsa.SALSACAS, salsa.ConcBag} {
		for _, size := range []int{16, 128, 1000, 2000} {
			b.Run(fmt.Sprintf("%s/chunk%d", alg, size), func(b *testing.B) {
				benchRun(b, workload.Config{
					Algorithm: alg,
					Producers: benchPairs,
					Consumers: benchPairs,
					ChunkSize: size,
				})
			})
		}
	}
}

// BenchmarkBatch sweeps the API batch size on SALSA at the standard
// balanced configuration: batch=1 is the single-task Put/Get baseline
// (and must stay within noise of the pre-batching numbers); larger
// batches amortize the access-list walk, hazard publish and chunk
// validation across each run of consecutive tasks. The batchfast metric
// is the fraction of retrievals completing on the amortized batch fast
// path.
func BenchmarkBatch(b *testing.B) {
	for _, batch := range workload.BatchSteps {
		b.Run(fmt.Sprintf("SALSA/batch%d", batch), func(b *testing.B) {
			cfg := workload.Config{
				Algorithm: salsa.SALSA,
				Producers: benchPairs,
				Consumers: benchPairs,
				Batch:     batch,
			}
			per := b.N / cfg.Producers
			if per < 1 {
				per = 1
			}
			res, err := workload.RunFixed(cfg, per)
			if err != nil {
				b.Fatal(err)
			}
			if res.Consumed != int64(per)*int64(cfg.Producers) {
				b.Fatalf("lost tasks: consumed %d of %d", res.Consumed, per*cfg.Producers)
			}
			b.ReportMetric(res.CASPerGet(), "cas/task")
			b.ReportMetric(res.Stats.FastPathRatio(), "fastpath")
			if res.Stats.Gets > 0 {
				b.ReportMetric(float64(res.Stats.BatchFastPath)/float64(res.Stats.Gets), "batchfast")
			}
			b.ReportMetric(res.Stats.AvgGetBatch(), "avgbatch")
		})
	}
}

// BenchmarkUncontendedFastPath isolates the paper's headline property: a
// single producer/consumer pair on SALSA, where every retrieval must ride
// the CAS-free fast path. This is the per-operation floor of the system.
func BenchmarkUncontendedFastPath(b *testing.B) {
	pool, err := salsa.New[workload.Task](salsa.Config{Producers: 1, Consumers: 1})
	if err != nil {
		b.Fatal(err)
	}
	p, c := pool.Producer(0), pool.Consumer(0)
	t := &workload.Task{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(t)
		got, ok := c.Get()
		if !ok {
			b.Fatal("empty after put")
		}
		t = got // recirculate the pointer: consumed tasks may be reused
	}
	b.StopTimer()
	s := pool.Stats()
	b.ReportMetric(s.CASPerGet(), "cas/task")
	b.ReportMetric(s.FastPathRatio(), "fastpath")
}

// BenchmarkExtendedBaselines compares the three extra related-work
// algorithms this repository implements beyond the paper's evaluated set
// (§1.2's ED-pools, Gidenstam-style chunk queues, and the Baskets Queue)
// against SALSA at the standard balanced configuration.
func BenchmarkExtendedBaselines(b *testing.B) {
	for _, alg := range []salsa.Algorithm{
		salsa.SALSA, salsa.EDPool, salsa.WSCHUNKQ, salsa.WSBaskets,
	} {
		b.Run(alg.String(), func(b *testing.B) {
			benchRun(b, workload.Config{
				Algorithm: alg,
				Producers: benchPairs,
				Consumers: benchPairs,
			})
		})
	}
}

// BenchmarkAblationStealOrder compares victim-iteration policies in the
// steal-heavy single-producer regime (an ablation of the §1.4 policy knob).
func BenchmarkAblationStealOrder(b *testing.B) {
	for _, v := range []struct {
		name string
		so   salsa.StealOrder
	}{
		{"nearest-first", salsa.StealNearestFirst},
		{"round-robin", salsa.StealRoundRobin},
		{"random", salsa.StealRandom},
	} {
		b.Run(v.name, func(b *testing.B) {
			per := b.N
			res, err := workload.RunFixed(workload.Config{
				Algorithm:  salsa.SALSA,
				Producers:  1,
				Consumers:  benchPairs,
				ChunkSize:  64,
				StealOrder: v.so,
			}, per)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.Steals), "steals")
			b.ReportMetric(res.CASPerGet(), "cas/task")
		})
	}
}

// BenchmarkAblationLinearizableEmpty measures the cost of the checkEmpty
// protocol against the non-linearizable single-pass Get on an empty pool —
// the price of a provably correct ⊥ (§1.5.5).
func BenchmarkAblationLinearizableEmpty(b *testing.B) {
	for _, lin := range []bool{true, false} {
		name := "linearizable"
		if !lin {
			name = "single-pass"
		}
		b.Run(name, func(b *testing.B) {
			pool, err := salsa.New[workload.Task](salsa.Config{
				Producers:            1,
				Consumers:            4,
				NonLinearizableEmpty: !lin,
			})
			if err != nil {
				b.Fatal(err)
			}
			c := pool.Consumer(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Get(); ok {
					b.Fatal("task in an empty pool")
				}
			}
		})
	}
}
