package salsa_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"salsa"
)

// TestSoak is a longer adversarial run (skipped with -short): SALSA with
// tiny chunks, producers that burst and pause, consumers that stall at
// random, and a rolling conservation check. It approximates the
// cmd/salsa-stress tool inside the test suite.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		producers = 4
		consumers = 4
		duration  = 2 * time.Second
	)
	pool, err := salsa.New[job](salsa.Config{
		Producers: producers,
		Consumers: consumers,
		Algorithm: salsa.SALSA,
		ChunkSize: 4, // maximum churn: recycle + steal constantly
	})
	if err != nil {
		t.Fatal(err)
	}

	var (
		produced atomic.Int64
		consumed atomic.Int64
		stopProd atomic.Bool
		done     atomic.Bool
	)
	var pwg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		pwg.Add(1)
		go func(pi int) {
			defer pwg.Done()
			rng := rand.New(rand.NewSource(int64(pi)))
			p := pool.Producer(pi)
			seq := 0
			for !stopProd.Load() {
				burst := 1 + rng.Intn(64)
				for i := 0; i < burst; i++ {
					p.Put(&job{producer: pi, seq: seq})
					seq++
				}
				produced.Add(int64(burst))
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
		}(pi)
	}

	var returned sync.Map // *job → struct{}: global duplicate detector
	var cwg sync.WaitGroup
	for ci := 0; ci < consumers; ci++ {
		cwg.Add(1)
		go func(ci int) {
			defer cwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + ci)))
			c := pool.Consumer(ci)
			defer c.Close()
			for {
				wasDone := done.Load()
				j, ok := c.Get()
				if ok {
					if _, dup := returned.LoadOrStore(j, struct{}{}); dup {
						t.Errorf("consumer %d: task %+v returned twice", ci, *j)
						return
					}
					consumed.Add(1)
					if rng.Intn(5000) == 0 {
						time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond) // stall
					}
					continue
				}
				if wasDone {
					return
				}
			}
		}(ci)
	}

	time.Sleep(duration)
	stopProd.Store(true)
	pwg.Wait()
	done.Store(true)
	cwg.Wait()

	if consumed.Load() != produced.Load() {
		t.Fatalf("conservation violated: produced %d, consumed %d",
			produced.Load(), consumed.Load())
	}
	s := pool.Stats()
	t.Logf("soak: %d tasks, %d steals, %.4f cas/task, fastpath %.4f",
		consumed.Load(), s.Steals, s.CASPerGet(), s.FastPathRatio())
	if s.FastPathRatio() < 0.5 {
		t.Errorf("fast-path ratio %.3f suspiciously low even for chunk size 4", s.FastPathRatio())
	}
}
