package salsa_test

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"salsa"
	"salsa/internal/backoff"
	"salsa/internal/loadgen"
)

// TestSoak drives the shared traffic-scenario matrix (internal/loadgen):
// seeded open-loop arrival processes — Poisson bursts, diurnal ramps,
// thundering herds, Zipf hotspots, heavy-tailed sizes, priority floods —
// replayed through the admission layer against the real pool and executor.
// Each scenario must end in an exactly-once accounting verdict: every
// offered task delivered or measurably shed, never both, never neither.
// Short mode runs the cheap pair; full mode runs the whole matrix (the
// same suite as `make soak`). A failure names the scenario seed and the
// salsa-loadgen replay line that rebuilds the identical schedule.
func TestSoak(t *testing.T) {
	scenarios := loadgen.Matrix()
	if testing.Short() {
		scenarios = loadgen.ShortMatrix()
	}
	const seed = 1
	for si, sc := range scenarios {
		sc := sc
		scSeed := uint64(int64(seed)*1_000_003 + int64(si)*10_007)
		t.Run(sc.Name, func(t *testing.T) {
			res := loadgen.Run(sc, scSeed, loadgen.Options{})
			t.Log(res.Report())
			if res.Verdict != nil {
				t.Fatalf("verdict: %v\nreplay: %s", res.Verdict, res.ReplayInvocation())
			}
			if res.Delivered+res.Shed != int64(res.Offered) {
				t.Fatalf("books don't balance: offered %d, delivered %d, shed %d",
					res.Offered, res.Delivered, res.Shed)
			}
		})
	}
}

// TestHerdShedNeverParks is the latency-assertion regression test for the
// shed policy: under the thundering-herd scenario, overload must surface
// as immediate typed sheds (TryPut's ErrSaturated converted by the
// admission layer), never as producer-side parking — and plain Get must
// keep its never-parks contract on the consumer side. The pause observer
// sees every backoff decision in the process; any would-sleep pause
// outside a YieldOnly loop means someone turned backpressure into a timed
// block, i.e. admission control was bypassed.
func TestHerdShedNeverParks(t *testing.T) {
	sc, err := loadgen.ByName("thundering-herd")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Admission.Policy != salsa.AdmitShed {
		t.Fatalf("thundering-herd must use the shed policy, got %v", sc.Admission.Policy)
	}

	var pauses, wouldPark atomic.Int64
	backoff.SetPauseObserver(func(info backoff.PauseInfo) {
		pauses.Add(1)
		if info.WouldSleep && !info.YieldOnly {
			wouldPark.Add(1)
		}
		// The observer replaces Pause's own waiting; keep the run live.
		runtime.Gosched()
	})
	defer backoff.SetPauseObserver(nil)

	res := loadgen.Run(sc, 99, loadgen.Options{})
	if res.Verdict != nil {
		t.Fatalf("verdict: %v\nreplay: %s", res.Verdict, res.ReplayInvocation())
	}
	if res.Shed == 0 {
		t.Fatal("the herd saturated nothing: ErrSaturated conversion untested")
	}
	if res.ShedBy["low/saturated"] == 0 {
		t.Fatalf("herd sheds must carry the saturated reason (the ErrSaturated conversion): %v", res.ShedBy)
	}
	if n := wouldPark.Load(); n != 0 {
		t.Fatalf("%d would-park pauses under the shed policy: a retry loop is blocking instead of shedding", n)
	}
	t.Logf("herd: %d sheds, %d deliveries, %d pauses (all yield-capped), p99=%v",
		res.Shed, res.Delivered, pauses.Load(), res.Latency.P99())
}

// TestShedErrorIsSaturated pins the contract the herd test relies on: a
// saturation shed matches both sentinels, a rate shed only ErrShed.
func TestShedErrorIsSaturated(t *testing.T) {
	sat := &salsa.ShedError{Class: salsa.ClassLow, Reason: salsa.ShedSaturated}
	if !errors.Is(sat, salsa.ErrShed) || !errors.Is(sat, salsa.ErrSaturated) {
		t.Fatal("saturation shed must match ErrShed and ErrSaturated")
	}
	rate := &salsa.ShedError{Class: salsa.ClassHigh, Reason: salsa.ShedRate}
	if !errors.Is(rate, salsa.ErrShed) || errors.Is(rate, salsa.ErrSaturated) {
		t.Fatal("rate shed must match ErrShed only")
	}
}
