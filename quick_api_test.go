package salsa_test

import (
	"testing"
	"testing/quick"

	"salsa"
)

// TestQuickPublicAPIModel property-tests the public API across all
// algorithms: any sequential interleaving of Put/Get through arbitrary
// handles must conserve tasks and report emptiness only when the model is
// empty.
func TestQuickPublicAPIModel(t *testing.T) {
	f := func(ops []uint8, algSeed, chunkSeed uint8) bool {
		alg := allAlgorithms[int(algSeed)%len(allAlgorithms)]
		chunk := int(chunkSeed%15) + 1
		pool, err := salsa.New[job](salsa.Config{
			Producers: 2,
			Consumers: 2,
			Algorithm: alg,
			ChunkSize: chunk,
		})
		if err != nil {
			return false
		}
		live := map[int]bool{}
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // put via producer op%2
				pool.Producer(int(op) % 2).Put(&job{seq: next})
				live[next] = true
				next++
			case 2, 3: // get via consumer op%2
				j, ok := pool.Consumer(int(op) % 2).Get()
				if !ok {
					if len(live) != 0 {
						return false // phantom emptiness (sequential!)
					}
					continue
				}
				if !live[j.seq] {
					return false // duplicate or phantom task
				}
				delete(live, j.seq)
			}
		}
		// Drain: alternate consumers until both report empty.
		for guard := 0; len(live) > 0 && guard < len(ops)*2+8; guard++ {
			j, ok := pool.Consumer(guard % 2).Get()
			if !ok {
				continue
			}
			if !live[j.seq] {
				return false
			}
			delete(live, j.seq)
		}
		if len(live) != 0 {
			return false
		}
		// Both consumers must now agree the pool is empty.
		for ci := 0; ci < 2; ci++ {
			if _, ok := pool.Consumer(ci).Get(); ok {
				return false
			}
		}
		pool.Close()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	pool := newPool(t, salsa.SALSA, 1, 2, 8)
	pool.Producer(0).Put(&job{seq: 1})
	if _, ok := pool.Consumer(0).Get(); !ok {
		t.Fatal("Get failed")
	}
	pool.Close()
	pool.Close()
}
