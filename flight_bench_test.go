package salsa_test

import (
	"os"
	"testing"

	"salsa/internal/flight"
)

// TestMain arms the flight recorder for the entire test/bench binary when
// SALSA_FLIGHT_BENCH=1. bench-smoke uses it for the armed overhead guard:
// the same benchmarks run three ways — recorder compiled out
// (salsa_noflight), compiled in but disarmed (the default), and armed with
// every hot-path event being recorded — and each way must stay within
// tolerance of the committed reference (BENCH_batch.json). Arming is a
// no-op when the recorder is compiled out, so the noflight run can share
// this TestMain.
func TestMain(m *testing.M) {
	if os.Getenv("SALSA_FLIGHT_BENCH") == "1" && flight.Compiled {
		flight.Enable(flight.Options{
			Consumers: 64,
			Producers: 64,
			RingSize:  flight.DefaultRingSize,
		})
	}
	os.Exit(m.Run())
}
