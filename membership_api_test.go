package salsa_test

import (
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"salsa"
)

// newElasticPool builds a pool with join headroom: capacity for max
// consumer ids, starting with `consumers` live.
func newElasticPool(t testing.TB, alg salsa.Algorithm, producers, consumers, max, chunk int) *salsa.Pool[job] {
	t.Helper()
	p, err := salsa.New[job](salsa.Config{
		Producers:    producers,
		Consumers:    consumers,
		MaxConsumers: max,
		Algorithm:    alg,
		ChunkSize:    chunk,
		NUMANodes:    4,
		CoresPerNode: 4,
	})
	if err != nil {
		t.Fatalf("New(%v): %v", alg, err)
	}
	return p
}

// TestKillReclamationAllSubstrates is the abandoned-pool reclamation
// contract at the public API, on every substrate: every task produced
// before KillConsumer is consumed exactly once by the survivors. SALSA and
// SALSA+CAS exercise the native Abandon path (chunk-granularity steal
// reclamation); the remaining substrates go through the generic fallback,
// where departure is routing exclusion plus the victim staying on every
// survivor's steal list.
func TestKillReclamationAllSubstrates(t *testing.T) {
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newElasticPool(t, alg, 2, 3, 3, 8)
			defer pool.Close()

			const n = 600
			var mu sync.Mutex
			want := make(map[*job]bool, n)
			for i := 0; i < n; i++ {
				j := &job{producer: i % 2, seq: i}
				want[j] = true
				pool.Producer(i % 2).Put(j)
			}

			// The victim never ran, so it is quiescent: zero tasks may
			// be lost, including everything queued in its own pool.
			if err := pool.KillConsumer(1); err != nil {
				t.Fatalf("KillConsumer: %v", err)
			}
			if got := pool.LiveConsumers(); got != 2 {
				t.Fatalf("LiveConsumers = %d, want 2", got)
			}
			if got := pool.MembershipEpoch(); got != 1 {
				t.Fatalf("MembershipEpoch = %d, want 1", got)
			}

			var wg sync.WaitGroup
			for _, id := range []int{0, 2} {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					c := pool.Consumer(id)
					for {
						j, ok := c.Get()
						if !ok {
							return
						}
						mu.Lock()
						if !want[j] {
							mu.Unlock()
							panic("task unknown or consumed twice")
						}
						delete(want, j)
						mu.Unlock()
					}
				}(id)
			}
			wg.Wait()
			if len(want) != 0 {
				t.Fatalf("%d of %d tasks lost after kill", len(want), n)
			}

			// Post-kill inserts keep flowing to survivors.
			extra := &job{seq: n}
			pool.Producer(0).Put(extra)
			if j, ok := pool.Consumer(0).Get(); !ok || j != extra {
				t.Fatalf("post-kill Put not retrievable (ok=%v)", ok)
			}
		})
	}
}

// TestAddRetireRoundTrip exercises join and graceful retirement through the
// public API on every substrate.
func TestAddRetireRoundTrip(t *testing.T) {
	for _, alg := range allAlgorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pool := newElasticPool(t, alg, 1, 1, 3, 8)
			defer pool.Close()

			co, err := pool.AddConsumer()
			if err != nil {
				t.Fatalf("AddConsumer: %v", err)
			}
			if co.ID() != 1 {
				t.Fatalf("new consumer id = %d, want 1", co.ID())
			}
			if pool.Consumer(1) != co {
				t.Fatal("Consumer(1) does not return the added handle")
			}
			if pool.NumConsumers() != 2 || pool.LiveConsumers() != 2 {
				t.Fatalf("counts %d/%d after join", pool.NumConsumers(), pool.LiveConsumers())
			}

			// Tasks queued before the retirement of consumer 0 are
			// reclaimed by the newcomer.
			const n = 100
			want := make(map[*job]bool, n)
			for i := 0; i < n; i++ {
				j := &job{seq: i}
				want[j] = true
				pool.Producer(0).Put(j)
			}
			if err := pool.RetireConsumer(0); err != nil {
				t.Fatalf("RetireConsumer: %v", err)
			}
			if pool.LiveConsumers() != 1 {
				t.Fatalf("LiveConsumers = %d after retire", pool.LiveConsumers())
			}
			for len(want) > 0 {
				j, ok := co.Get()
				if !ok {
					t.Fatalf("Get reported empty with %d tasks outstanding", len(want))
				}
				if !want[j] {
					t.Fatalf("task %d unknown or consumed twice", j.seq)
				}
				delete(want, j)
			}
			if _, ok := co.Get(); ok {
				t.Fatal("Get returned a task from a drained system")
			}
		})
	}
}

func TestMembershipErrors(t *testing.T) {
	pool := newElasticPool(t, salsa.SALSA, 1, 1, 2, 8)
	defer pool.Close()

	if err := pool.RetireConsumer(-1); err == nil {
		t.Error("RetireConsumer(-1) accepted")
	}
	if err := pool.KillConsumer(5); err == nil {
		t.Error("KillConsumer(5) accepted")
	}
	// The last live consumer cannot depart.
	if err := pool.RetireConsumer(0); err == nil {
		t.Error("retiring the last live consumer accepted")
	}
	if _, err := pool.AddConsumer(); err != nil {
		t.Fatalf("AddConsumer within capacity: %v", err)
	}
	if _, err := pool.AddConsumer(); err == nil {
		t.Error("AddConsumer beyond MaxConsumers accepted")
	}
	if err := pool.RetireConsumer(0); err != nil {
		t.Fatalf("RetireConsumer(0) with a survivor: %v", err)
	}
	// Ids are never reused: a departed consumer cannot depart again.
	if err := pool.RetireConsumer(0); err == nil {
		t.Error("double retire accepted")
	}
	if err := pool.KillConsumer(0); err == nil {
		t.Error("killing a retired consumer accepted")
	}
}

func TestMaxConsumersValidation(t *testing.T) {
	_, err := salsa.New[job](salsa.Config{Producers: 1, Consumers: 4, MaxConsumers: 2})
	if err == nil {
		t.Fatal("MaxConsumers below Consumers accepted")
	}
}

// TestConsumerCloseIdempotent is the Close contract: repeated Close is a
// no-op, Pool.Close is repeatable, and every Get-family call on a closed
// handle panics deterministically instead of racing on the freed hazard
// record.
func TestConsumerCloseIdempotent(t *testing.T) {
	pool := newPool(t, salsa.SALSA, 1, 2, 8)
	c := pool.Consumer(0)
	c.Close()
	c.Close() // second Close must be a no-op, not a double release
	pool.Close()
	pool.Close() // repeated Pool.Close is safe, including over closed handles

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a closed handle did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Get", func() { c.Get() })
	mustPanic("TryGet", func() { c.TryGet() })
	mustPanic("GetBatch", func() { c.GetBatch(make([]*job, 4)) })
	mustPanic("TryGetBatch", func() { c.TryGetBatch(make([]*job, 4)) })
	mustPanic("GetWait", func() {
		stop := make(chan struct{})
		close(stop)
		c.GetWait(stop)
	})
}

// TestRetiredHandleGetPanics: RetireConsumer closes the victim's handle, so
// using it afterwards panics rather than touching an abandoned pool.
func TestRetiredHandleGetPanics(t *testing.T) {
	pool := newElasticPool(t, salsa.SALSA, 1, 2, 2, 8)
	defer pool.Close()
	victim := pool.Consumer(0)
	if err := pool.RetireConsumer(0); err != nil {
		t.Fatalf("RetireConsumer: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get on a retired handle did not panic")
		}
	}()
	victim.Get()
}

// TestMembershipTelemetry: the snapshot and the Prometheus exposition track
// membership epochs, orphaned tasks in abandoned pools, and reclamation.
func TestMembershipTelemetry(t *testing.T) {
	p, err := salsa.New[job](salsa.Config{
		Producers:    1,
		Consumers:    2,
		MaxConsumers: 3,
		ChunkSize:    8,
		NUMANodes:    2,
		CoresPerNode: 4,
		Metrics:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 64
	for i := 0; i < n; i++ {
		p.Producer(0).Put(&job{seq: i})
	}
	if err := p.KillConsumer(1); err != nil {
		t.Fatalf("KillConsumer: %v", err)
	}

	s := p.TelemetrySnapshot()
	if s.MembershipEpoch != 1 || s.LiveConsumers != 1 || s.Consumers != 2 {
		t.Fatalf("epoch/live/registered = %d/%d/%d, want 1/1/2",
			s.MembershipEpoch, s.LiveConsumers, s.Consumers)
	}
	if s.MemberCrashes != 1 || s.MemberJoins != 0 {
		t.Fatalf("crashes/joins = %d/%d, want 1/0", s.MemberCrashes, s.MemberJoins)
	}
	orphanedBefore := s.OrphanedTasks

	// Drain everything; the orphan gauge must fall to zero and the
	// reclaimed-chunk counter must have moved (SALSA native path).
	survivor := p.Consumer(0)
	drained := 0
	for {
		if _, ok := survivor.Get(); !ok {
			break
		}
		drained++
	}
	if drained != n {
		t.Fatalf("survivor drained %d tasks, want %d", drained, n)
	}
	s = p.TelemetrySnapshot()
	if s.OrphanedTasks != 0 {
		t.Fatalf("OrphanedTasks = %d after full drain (was %d)", s.OrphanedTasks, orphanedBefore)
	}
	if s.Ops.ReclaimedChunks == 0 {
		t.Fatal("ReclaimedChunks = 0 after draining an abandoned pool")
	}

	// A join after the crash: collector rows for id 2 exist because the
	// collector is sized for MaxConsumers.
	co, err := p.AddConsumer()
	if err != nil {
		t.Fatalf("AddConsumer: %v", err)
	}
	p.Producer(0).Put(&job{seq: n})
	if _, ok := co.Get(); !ok {
		t.Fatal("added consumer found nothing")
	}
	s = p.TelemetrySnapshot()
	if s.MembershipEpoch != 2 || s.MemberJoins != 1 || s.Consumers != 3 {
		t.Fatalf("epoch/joins/registered = %d/%d/%d, want 2/1/3",
			s.MembershipEpoch, s.MemberJoins, s.Consumers)
	}

	// The exposition carries the membership series.
	rec := httptest.NewRecorder()
	p.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"salsa_membership_epoch 2",
		"salsa_live_consumers 2",
		"salsa_reclaimed_chunks_total",
		"salsa_member_crashes_total 1",
		"salsa_member_joins_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestOrphanedTasksGauge: tasks stranded in an abandoned pool are visible in
// the snapshot before survivors reclaim them.
func TestOrphanedTasksGauge(t *testing.T) {
	p, err := salsa.New[job](salsa.Config{
		Producers:    2,
		Consumers:    2,
		MaxConsumers: 2,
		ChunkSize:    4,
		NUMANodes:    2,
		CoresPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 40
	for i := 0; i < n; i++ {
		p.Producer(i % 2).Put(&job{seq: i})
	}
	if err := p.KillConsumer(0); err != nil {
		t.Fatalf("KillConsumer: %v", err)
	}
	if got := p.TelemetrySnapshot().OrphanedTasks; got <= 0 {
		t.Fatalf("OrphanedTasks = %d right after kill, want > 0", got)
	}
	for {
		if _, ok := p.Consumer(1).Get(); !ok {
			break
		}
	}
	if got := p.TelemetrySnapshot().OrphanedTasks; got != 0 {
		t.Fatalf("OrphanedTasks = %d after drain, want 0", got)
	}
}

// TestChurnLinearizability hammers elastic membership at the public API:
// producers insert continuously while a churner retires a random live
// consumer and adds a replacement, and the final accounting demands every
// task delivered exactly once across all membership epochs.
func TestChurnLinearizability(t *testing.T) {
	const (
		producers = 2
		consumers = 3
		perProd   = 30000
		cycles    = 12
	)
	p, err := salsa.New[job](salsa.Config{
		Producers:    producers,
		Consumers:    consumers,
		MaxConsumers: consumers + cycles,
		ChunkSize:    16,
		NUMANodes:    2,
		CoresPerNode: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var produced sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		produced.Add(1)
		go func(pi int) {
			defer produced.Done()
			h := p.Producer(pi)
			for i := 0; i < perProd; i++ {
				h.Put(&job{producer: pi, seq: i})
			}
		}(pi)
	}

	const total = producers * perProd
	var (
		retrieved atomic.Int64
		dup       atomic.Int64
		seen      sync.Map // *job -> struct{}
		cwg       sync.WaitGroup
	)
	type ctl struct {
		stop chan struct{}
		done chan struct{}
	}
	runConsumer := func(c *salsa.Consumer[job], cc *ctl) {
		defer cwg.Done()
		defer close(cc.done)
		for {
			select {
			case <-cc.stop:
				return // retired: survivors reclaim the backlog
			default:
			}
			if j, ok := c.Get(); ok {
				if _, loaded := seen.LoadOrStore(j, struct{}{}); loaded {
					dup.Add(1)
				}
				retrieved.Add(1)
				continue
			}
			if retrieved.Load() >= total {
				return
			}
		}
	}
	var mu sync.Mutex
	ctls := map[int]*ctl{}
	for ci := 0; ci < consumers; ci++ {
		cc := &ctl{stop: make(chan struct{}), done: make(chan struct{})}
		ctls[ci] = cc
		cwg.Add(1)
		go runConsumer(p.Consumer(ci), cc)
	}

	// Churn while production and drain are in flight.
	for cycle := 0; cycle < cycles; cycle++ {
		mu.Lock()
		var victim int
		for id := range ctls {
			victim = id
			break
		}
		cc := ctls[victim]
		delete(ctls, victim)
		mu.Unlock()

		close(cc.stop)
		<-cc.done
		if err := p.RetireConsumer(victim); err != nil {
			t.Fatalf("cycle %d: RetireConsumer(%d): %v", cycle, victim, err)
		}
		co, err := p.AddConsumer()
		if err != nil {
			t.Fatalf("cycle %d: AddConsumer: %v", cycle, err)
		}
		ncc := &ctl{stop: make(chan struct{}), done: make(chan struct{})}
		mu.Lock()
		ctls[co.ID()] = ncc
		mu.Unlock()
		cwg.Add(1)
		go runConsumer(co, ncc)
	}

	produced.Wait()
	cwg.Wait()
	if dup.Load() != 0 {
		t.Fatalf("%d tasks delivered twice across churn", dup.Load())
	}
	if got := retrieved.Load(); got != total {
		t.Fatalf("retrieved %d of %d tasks across churn", got, total)
	}
	if got := p.MembershipEpoch(); got != 2*cycles {
		t.Fatalf("MembershipEpoch = %d after %d retire+add cycles, want %d", got, cycles, 2*cycles)
	}
}
